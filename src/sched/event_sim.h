#pragma once
/// \file event_sim.h
/// \brief Virtual-time discrete-event scheduler for batch BO experiments.
///
/// The paper's wall-clock results depend only on (a) the duration of each
/// circuit simulation and (b) the issue policy — synchronous (barrier per
/// batch) vs asynchronous (issue whenever a worker goes idle, Fig. 1). This
/// scheduler reproduces both policies exactly in virtual time, so the
/// experiment harness measures "simulation wall-clock" deterministically
/// and for free, as the paper's footnote 1 prescribes (model/acquisition
/// time is excluded from the reported times).
///
/// The BO drivers (src/bo) interact with it like with a real cluster:
///   while (scheduler.has_idle_worker()) scheduler.submit(tag, duration);
///   auto done = scheduler.wait_next();   // advances virtual time

#include <cstddef>
#include <queue>
#include <vector>

namespace easybo::sched {

/// One completed (or running) job, also the unit of the schedule trace used
/// to reproduce Fig. 1.
struct JobRecord {
  std::size_t job_id = 0;
  std::size_t tag = 0;     ///< caller-defined payload (e.g. proposal index)
  std::size_t worker = 0;
  double start = 0.0;      ///< virtual time
  double finish = 0.0;     ///< virtual time
};

/// Fixed pool of virtual workers with exact event-driven time advance.
class VirtualScheduler {
 public:
  explicit VirtualScheduler(std::size_t num_workers);

  std::size_t num_workers() const { return num_workers_; }

  /// Current virtual time (advances only inside wait_next()).
  double now() const { return now_; }

  std::size_t num_running() const { return running_.size(); }
  bool has_idle_worker() const { return !idle_.empty(); }
  std::size_t num_idle() const { return idle_.size(); }

  /// Starts a job of the given duration on an idle worker at the current
  /// virtual time. Throws InvalidArgument when no worker is idle or the
  /// duration is not positive. Returns the job id.
  std::size_t submit(std::size_t tag, double duration);

  /// Advances virtual time to the earliest completion, frees that worker,
  /// and returns the completed job. Throws InvalidArgument when nothing is
  /// running.
  JobRecord wait_next();

  /// Lower-bounds the clock: advances now() to \p t without completing
  /// anything. Never moves time backward, and never past the earliest
  /// running completion (the request is capped there, keeping completion
  /// order intact). Checkpoint resume uses this to re-anchor re-submitted
  /// work at its original submission time.
  void advance_to(double t);

  /// Advances past ALL currently running jobs (the synchronous barrier) and
  /// returns them in completion order.
  std::vector<JobRecord> wait_all();

  /// Sum over workers of busy time so far.
  double total_busy_time() const { return total_busy_; }

  /// Busy virtual seconds accumulated per worker slot (submitted jobs
  /// count fully — their finish times are fixed at submission).
  const std::vector<double>& per_worker_busy() const { return busy_; }

  /// Busy fraction of the pool over [0, now]; 0 when now == 0.
  double utilization() const;

  /// Every job ever submitted, in submission order (finish times are final
  /// because durations are known at submission).
  const std::vector<JobRecord>& trace() const { return trace_; }

 private:
  struct Running {
    double finish;
    std::size_t trace_index;
    // Tie-break equal finish times by submission order (trace_index grows
    // with job_id), so equal-duration jobs — the norm under a constant
    // sim_time — complete FIFO rather than in heap order.
    bool operator>(const Running& other) const {
      if (finish != other.finish) return finish > other.finish;
      return trace_index > other.trace_index;
    }
  };

  std::size_t num_workers_;
  double now_ = 0.0;
  double total_busy_ = 0.0;
  std::vector<double> busy_;  // per-worker share of total_busy_
  std::vector<std::size_t> idle_;
  std::priority_queue<Running, std::vector<Running>, std::greater<Running>>
      running_;
  std::vector<JobRecord> trace_;
  std::size_t next_job_id_ = 0;
};

/// Makespan comparison of the two issue policies on a fixed duration list,
/// used by the Fig. 1 bench: runs the same durations through a synchronous
/// (batched) and an asynchronous (greedy) schedule with `workers` workers.
struct PolicyComparison {
  double sync_makespan = 0.0;
  double async_makespan = 0.0;
  double sync_utilization = 0.0;
  double async_utilization = 0.0;
  std::vector<JobRecord> sync_trace;
  std::vector<JobRecord> async_trace;
};

PolicyComparison compare_policies(const std::vector<double>& durations,
                                  std::size_t workers);

}  // namespace easybo::sched
