#include "sched/supervisor.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>
#include <thread>
#include <utility>

#include "common/error.h"

namespace easybo::sched {

const char* to_string(EvalStatus status) {
  switch (status) {
    case EvalStatus::Ok: return "ok";
    case EvalStatus::Exception: return "exception";
    case EvalStatus::Timeout: return "timeout";
    case EvalStatus::NonFinite: return "non_finite";
  }
  return "?";
}

void SupervisorConfig::validate() const {
  EASYBO_REQUIRE(backoff_init >= 0.0, "backoff_init must be >= 0");
  EASYBO_REQUIRE(backoff_factor >= 1.0, "backoff_factor must be >= 1");
  EASYBO_REQUIRE(backoff_max >= 0.0, "backoff_max must be >= 0");
  EASYBO_REQUIRE(backoff_jitter >= 0.0 && backoff_jitter <= 1.0,
                 "backoff_jitter must be in [0, 1]");
}

double backoff_delay(const SupervisorConfig& config, std::size_t retry,
                     Rng& rng) {
  EASYBO_REQUIRE(retry >= 1, "backoff_delay: retries are 1-based");
  double delay = config.backoff_init;
  for (std::size_t i = 1; i < retry; ++i) {
    delay *= config.backoff_factor;
    if (delay >= config.backoff_max) break;  // saturated; stop compounding
  }
  delay = std::min(delay, config.backoff_max);
  if (config.backoff_jitter > 0.0 && delay > 0.0) {
    delay *= 1.0 + config.backoff_jitter * (2.0 * rng.uniform() - 1.0);
  }
  return delay;
}

EvalSupervisor::EvalSupervisor(Executor& exec, SupervisorConfig config,
                               obs::TraceSink* trace)
    : exec_(exec), cfg_(config), trace_(trace), rng_(config.seed) {
  cfg_.validate();
}

std::size_t EvalSupervisor::num_running() const {
  return exec_.num_running() - orphans_;
}

void EvalSupervisor::submit(std::size_t tag, std::function<double()> work,
                            double duration) {
  Flight flight;
  flight.tag = tag;
  flight.work = std::move(work);
  flight.duration = duration;
  flight.first_start = exec_.now();
  launch(std::move(flight), /*delay=*/0.0);
}

void EvalSupervisor::launch(Flight flight, double delay) {
  const std::size_t id = next_id_++;
  const bool deadline_on = cfg_.timeout > 0.0;
  flight.cut_at_deadline = false;
  flight.orphaned = false;
  flight.slot = std::make_shared<AttemptSlot>();

  double submitted = flight.duration;
  if (deadline_on && !exec_.wall_clock() && submitted > cfg_.timeout) {
    // Virtual time: the attempt would outlive its deadline, so cut it
    // there — the worker is occupied until exactly the deadline, as if
    // the simulator had been killed at its time limit.
    submitted = cfg_.timeout;
    flight.cut_at_deadline = true;
  }
  submitted += delay;  // backoff occupies the worker as relaunch latency
  flight.deadline = exec_.now() + delay + cfg_.timeout;

  const double sleep_s = exec_.wall_clock() ? delay : 0.0;
  auto slot = flight.slot;
  auto inner = flight.work;  // retries resubmit it; keep the original
  auto wrapped = [inner = std::move(inner), slot,
                  sleep_s]() -> double {
    if (sleep_s > 0.0) {
      std::this_thread::sleep_for(std::chrono::duration<double>(sleep_s));
    }
    try {
      return inner();
    } catch (const std::exception& e) {
      slot->threw = true;
      slot->error = std::current_exception();
      slot->what = e.what();
    } catch (...) {
      slot->threw = true;
      slot->error = std::current_exception();
      slot->what = "unknown exception";
    }
    return 0.0;  // sentinel; never observed as a value
  };
  exec_.submit(id, std::move(wrapped), submitted);
  inflight_.emplace(id, std::move(flight));
}

EvalStatus EvalSupervisor::classify(const Flight& flight,
                                    const Completion& c) const {
  if (flight.cut_at_deadline) return EvalStatus::Timeout;
  if (flight.slot->threw) return EvalStatus::Exception;
  if (!std::isfinite(c.value)) return EvalStatus::NonFinite;
  if (cfg_.timeout > 0.0 && exec_.wall_clock() &&
      c.finish > flight.deadline) {
    // The attempt beat the watchdog to the completion queue but still
    // exceeded its deadline; classify consistently.
    return EvalStatus::Timeout;
  }
  return EvalStatus::Ok;
}

SupervisedCompletion EvalSupervisor::wait_next() {
  EASYBO_REQUIRE(num_running() > 0,
                 "EvalSupervisor::wait_next with no supervised job");
  const bool watchdog = cfg_.timeout > 0.0 && exec_.wall_clock();
  for (;;) {
    std::optional<Completion> copt;
    if (watchdog) {
      // Earliest deadline among live flights drives the bounded wait.
      double dl = std::numeric_limits<double>::infinity();
      std::size_t dl_id = 0;
      for (const auto& [id, f] : inflight_) {
        if (!f.orphaned && f.deadline < dl) {
          dl = f.deadline;
          dl_id = id;
        }
      }
      if (dl - exec_.now() <= 0.0) {
        // Overdue: abandon the worker and report (or retry) now.
        Flight& stuck = inflight_.at(dl_id);
        obs::count(trace_, "eval.timeouts");
        Flight cont = stuck;  // salvage before orphaning
        stuck.orphaned = true;
        stuck.work = nullptr;  // the orphan only waits to be swallowed
        ++orphans_;
        const bool can_retry = cfg_.retry_timeouts &&
                               cont.attempt <= cfg_.max_retries &&
                               exec_.has_idle_worker();
        if (can_retry) {
          obs::count(trace_, "eval.retries");
          cont.attempt += 1;
          launch(std::move(cont),
                 backoff_delay(cfg_, cont.attempt - 1, rng_));
          continue;
        }
        SupervisedCompletion out;
        out.completion.tag = cont.tag;
        out.completion.worker = exec_.num_workers();  // sentinel: unknown
        out.completion.start = cont.first_start;
        out.completion.finish = exec_.now();
        out.status = EvalStatus::Timeout;
        out.attempts = cont.attempt;
        return out;
      }
      copt = exec_.try_wait_next(dl - exec_.now());
      if (!copt) continue;  // re-scan deadlines
    } else {
      copt = exec_.wait_next();
    }

    const Completion c = *copt;
    auto it = inflight_.find(c.tag);
    EASYBO_REQUIRE(it != inflight_.end(),
                   "completion for an unsupervised job");
    if (it->second.orphaned) {
      // The hung objective finally returned; its slot rejoins the pool
      // and the stale result is dropped (its timeout was already
      // reported).
      inflight_.erase(it);
      --orphans_;
      continue;
    }
    Flight flight = std::move(it->second);
    inflight_.erase(it);

    const EvalStatus status = classify(flight, c);
    if (status == EvalStatus::Ok) {
      SupervisedCompletion out;
      out.completion = c;
      out.completion.tag = flight.tag;
      out.completion.start = flight.first_start;
      out.attempts = flight.attempt;
      return out;
    }

    switch (status) {
      case EvalStatus::Exception:
        obs::count(trace_, "eval.exceptions");
        break;
      case EvalStatus::NonFinite:
        obs::count(trace_, "eval.nonfinite");
        break;
      case EvalStatus::Timeout:
        obs::count(trace_, "eval.timeouts");
        break;
      case EvalStatus::Ok: break;
    }
    const bool retryable =
        status != EvalStatus::Timeout || cfg_.retry_timeouts;
    if (retryable && flight.attempt <= cfg_.max_retries) {
      obs::count(trace_, "eval.retries");
      flight.attempt += 1;
      launch(std::move(flight),
             backoff_delay(cfg_, flight.attempt - 1, rng_));
      continue;
    }

    SupervisedCompletion out;
    out.completion = c;
    out.completion.tag = flight.tag;
    out.completion.start = flight.first_start;
    out.status = status;
    out.attempts = flight.attempt;
    if (flight.slot->threw) {
      out.error = flight.slot->what;
      out.exception = flight.slot->error;
    }
    return out;
  }
}

void EvalSupervisor::replay_retries(std::uint32_t attempts) {
  for (std::uint32_t retry = 1; retry < attempts; ++retry) {
    (void)backoff_delay(cfg_, retry, rng_);
  }
}

std::vector<SupervisedCompletion> EvalSupervisor::wait_all() {
  std::vector<SupervisedCompletion> done;
  while (num_running() > 0) done.push_back(wait_next());
  return done;
}

}  // namespace easybo::sched
