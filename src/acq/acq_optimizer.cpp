#include "acq/acq_optimizer.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/error.h"
#include "common/sampling.h"

namespace easybo::acq {

using linalg::Vec;

AcqOptResult maximize_acquisition(const AcquisitionFn& fn, std::size_t dim,
                                  easybo::Rng& rng,
                                  const std::vector<Vec>& anchors,
                                  const AcqOptOptions& opt,
                                  obs::TraceSink* sink,
                                  const common::StopToken* stop) {
  obs::ScopedTimer span(sink, obs::Phase::AcqMaximize);
  EASYBO_REQUIRE(dim >= 1, "maximize_acquisition: dim must be >= 1");
  EASYBO_REQUIRE(opt.sobol_candidates + opt.random_candidates > 0,
                 "maximize_acquisition: no screening candidates configured");

  AcqOptResult result;
  result.best_value = -std::numeric_limits<double>::infinity();

  std::vector<Vec> candidates;
  candidates.reserve(opt.sobol_candidates + opt.random_candidates +
                     anchors.size() * (1 + opt.anchor_jitter));

  if (opt.sobol_candidates > 0 && dim <= SobolSequence::kMaxDim) {
    // Random-shifted Sobol (Cranley–Patterson rotation): deterministic
    // stratification, decorrelated between calls.
    SobolSequence sobol(dim);
    Vec shift(dim);
    for (auto& s : shift) s = rng.uniform();
    for (std::size_t i = 0; i < opt.sobol_candidates; ++i) {
      Vec p = sobol.next();
      for (std::size_t j = 0; j < dim; ++j) {
        p[j] += shift[j];
        if (p[j] >= 1.0) p[j] -= 1.0;
      }
      candidates.push_back(std::move(p));
    }
  }
  const std::size_t random_count =
      opt.random_candidates +
      (dim > SobolSequence::kMaxDim ? opt.sobol_candidates : 0);
  for (std::size_t i = 0; i < random_count; ++i) {
    candidates.push_back(rng.uniform_vector(dim));
  }
  for (const auto& anchor : anchors) {
    EASYBO_REQUIRE(anchor.size() == dim,
                   "maximize_acquisition: anchor dim mismatch");
    candidates.push_back(anchor);
    for (std::size_t k = 0; k < opt.anchor_jitter; ++k) {
      Vec p = anchor;
      for (std::size_t j = 0; j < dim; ++j) {
        p[j] = std::clamp(p[j] + rng.normal(0.0, opt.jitter_scale), 0.0, 1.0);
      }
      candidates.push_back(std::move(p));
    }
  }

  // Screen. The cancellation poll sits between evaluations (every 32nd,
  // plus once up front so an expired token never starts the sweep); it
  // reads no RNG, so surviving the token leaves the stream untouched.
  Vec values(candidates.size());
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    if (stop != nullptr && (i & 31u) == 0) {
      stop->check("acquisition screening");
    }
    values[i] = fn(candidates[i]);
    ++result.num_evals;
  }

  // Indices of the top-k screened candidates.
  std::vector<std::size_t> order(candidates.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  const std::size_t k = std::min(opt.refine_top_k, order.size());
  std::partial_sort(order.begin(),
                    order.begin() + static_cast<std::ptrdiff_t>(k),
                    order.end(), [&](std::size_t a, std::size_t b) {
                      return values[a] > values[b];
                    });

  const std::size_t best_screen = order.front();
  result.best_x = candidates[best_screen];
  result.best_value = values[best_screen];

  // Local refinement.
  if (opt.refine_evals > dim + 2) {
    opt::Bounds unit{Vec(dim, 0.0), Vec(dim, 1.0)};
    opt::NelderMeadOptions nm;
    nm.max_evals = opt.refine_evals;
    nm.initial_step = 0.05;
    for (std::size_t i = 0; i < k; ++i) {
      if (stop != nullptr) stop->check("acquisition refinement");
      const auto local = opt::nelder_mead_maximize(
          [&fn](const Vec& x) { return fn(x); }, unit, candidates[order[i]],
          nm);
      result.num_evals += local.num_evals;
      if (local.best_y > result.best_value) {
        result.best_value = local.best_y;
        result.best_x = local.best_x;
      }
    }
  }
  obs::count(sink, "acq.inner_evals", result.num_evals);
  return result;
}

}  // namespace easybo::acq
