#pragma once
/// \file thompson.h
/// \brief Thompson sampling and the GP-Hedge acquisition portfolio —
/// the remaining two acquisition families the paper surveys in §II-B
/// ([30] Thompson 1933; [31] Hoffman et al., UAI'11).

#include <vector>

#include "acq/acquisition.h"
#include "common/rng.h"

namespace easybo::acq {

/// Draws one joint sample of the GP posterior over \p candidates and
/// returns the index of its maximizer. This is one Thompson-sampling
/// proposal: inherently randomized, so a batch of B draws is diverse by
/// construction — an alternative diversity mechanism to EasyBO's
/// randomized w.
///
/// Cost: backend-dependent — O(m^2 n + m^3) for the exact GP (posterior
/// cross-covariances + a Cholesky of the m x m posterior covariance; keep
/// m at a few hundred), O(m M + M^2) for the RFF backend's weight-space
/// draw.
std::size_t thompson_sample_argmax(const gp::Regressor& model,
                                   const std::vector<Vec>& candidates,
                                   easybo::Rng& rng);

/// GP-Hedge portfolio over {EI, PI, UCB}: each member nominates its own
/// maximizer each round; the portfolio picks one nominee with probability
/// softmax(eta * gain_i) and afterwards rewards every member by the GP
/// posterior mean at its nominee. Members that keep nominating good
/// regions accumulate gain and get chosen more often.
class HedgePortfolio {
 public:
  /// \param eta  softmax temperature of the Hedge update.
  explicit HedgePortfolio(double eta = 1.0);

  static constexpr std::size_t kMembers = 3;  // EI, PI, UCB

  /// Selects the next query point. \p nominees must contain one candidate
  /// per member, in member order (EI, PI, UCB); returns the chosen index.
  std::size_t choose(easybo::Rng& rng) const;

  /// Hedge update after the model was refreshed: \p nominee_means holds
  /// the current posterior mean at each member's last nominee.
  void reward(const Vec& nominee_means);

  const Vec& gains() const { return gains_; }

  /// Restores gains captured by gains() (checkpoint resume). Requires
  /// exactly kMembers entries.
  void set_gains(const Vec& gains);

 private:
  double eta_;
  Vec gains_;
};

}  // namespace easybo::acq
