#pragma once
/// \file acq_optimizer.h
/// \brief Inner-loop maximization of acquisition functions.
///
/// Every algorithm in the comparison (EI, LCB, pBO, pHCBO, all EasyBO
/// variants) maximizes its acquisition with the same machinery, so the
/// comparison measures acquisition *design*, not inner-optimizer luck:
///   1. screen a low-discrepancy Sobol batch + random points + caller-
///      provided anchors (e.g. the incumbent and jittered copies of it);
///   2. locally refine the top-k screened points with Nelder–Mead;
///   3. return the overall argmax.
/// Operates on the normalized unit cube.

#include <vector>

#include "acq/acquisition.h"
#include "common/rng.h"
#include "common/stop_token.h"
#include "obs/trace.h"
#include "opt/nelder_mead.h"

namespace easybo::acq {

struct AcqOptOptions {
  std::size_t sobol_candidates = 512;   ///< deterministic screening points
  std::size_t random_candidates = 256;  ///< iid screening points
  std::size_t anchor_jitter = 8;        ///< jittered copies per anchor
  double jitter_scale = 0.05;           ///< stddev of anchor jitter
  std::size_t refine_top_k = 3;         ///< NM starts
  std::size_t refine_evals = 120;       ///< NM budget per start
};

struct AcqOptResult {
  linalg::Vec best_x;       ///< in the unit cube
  double best_value = 0.0;
  std::size_t num_evals = 0;  ///< total acquisition evaluations
};

/// Maximizes \p fn over [0,1]^dim.
/// \param anchors  extra screening points (unit cube), each also screened
///                 with `anchor_jitter` Gaussian-jittered copies.
/// \param sink     optional trace sink: times the whole maximization as
///                 Phase::AcqMaximize and counts "acq.inner_evals"
///                 (acquisition evaluations spent). Null = no overhead.
/// \param stop     optional cancellation token, polled between batches of
///                 screening evaluations and between Nelder–Mead starts
///                 (common::Cancelled unwinds from the poll, never
///                 mid-evaluation). Polls consume no RNG, so a run that
///                 survives its token is bit-identical to one without.
AcqOptResult maximize_acquisition(const AcquisitionFn& fn, std::size_t dim,
                                  easybo::Rng& rng,
                                  const std::vector<linalg::Vec>& anchors = {},
                                  const AcqOptOptions& options = {},
                                  obs::TraceSink* sink = nullptr,
                                  const common::StopToken* stop = nullptr);

}  // namespace easybo::acq
