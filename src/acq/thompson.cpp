#include "acq/thompson.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"
#include "linalg/cholesky.h"

namespace easybo::acq {

std::size_t thompson_sample_argmax(const GpRegressor& model,
                                   const std::vector<Vec>& candidates,
                                   easybo::Rng& rng) {
  EASYBO_REQUIRE(!candidates.empty(), "thompson: no candidates");
  EASYBO_REQUIRE(model.fitted(), "thompson: model not fitted");
  const std::size_t m = candidates.size();

  // Posterior mean vector and covariance matrix over the candidate set:
  //   mu_i    = m + k_i^T alpha
  //   Sigma_ij = k(c_i, c_j) - q_i^T q_j,  q_i = L^{-1} k(X, c_i).
  // We recompute via the public API (predict gives the diagonal; for the
  // cross terms we need the q vectors, reconstructed from solve_lower).
  const auto& kernel = model.kernel();
  const auto& xs = model.inputs();

  // q vectors and means.
  std::vector<Vec> q(m);
  Vec mu(m);
  for (std::size_t i = 0; i < m; ++i) {
    mu[i] = model.predict(candidates[i]).mean;
  }
  // Rebuild q_i through the model's factor: we do not have direct access,
  // so recompute with a local Cholesky of the training covariance. This
  // keeps the function self-contained at O(n^3) once per call.
  linalg::Matrix ktrain = kernel.gram(xs);
  ktrain.add_diagonal(model.noise_variance());
  const linalg::Cholesky chol(ktrain);
  for (std::size_t i = 0; i < m; ++i) {
    q[i] = chol.solve_lower(kernel.cross(candidates[i], xs));
  }

  linalg::Matrix sigma(m, m);
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = i; j < m; ++j) {
      const double v =
          kernel(candidates[i], candidates[j]) - linalg::dot(q[i], q[j]);
      sigma(i, j) = v;
      sigma(j, i) = v;
    }
  }

  // Sample f = mu + L_sigma z.
  const linalg::Cholesky sig_chol(sigma, /*initial_jitter=*/1e-8);
  Vec z(m);
  for (auto& v : z) v = rng.normal();
  const auto& l = sig_chol.factor();
  std::size_t best = 0;
  double best_value = -1e300;
  for (std::size_t i = 0; i < m; ++i) {
    double f = mu[i];
    for (std::size_t jj = 0; jj <= i; ++jj) f += l(i, jj) * z[jj];
    if (f > best_value) {
      best_value = f;
      best = i;
    }
  }
  return best;
}

HedgePortfolio::HedgePortfolio(double eta)
    : eta_(eta), gains_(kMembers, 0.0) {
  EASYBO_REQUIRE(eta > 0.0, "HedgePortfolio: eta must be positive");
}

std::size_t HedgePortfolio::choose(easybo::Rng& rng) const {
  // Softmax with the max subtracted for numerical stability.
  const double top = *std::max_element(gains_.begin(), gains_.end());
  Vec p(kMembers);
  double total = 0.0;
  for (std::size_t i = 0; i < kMembers; ++i) {
    p[i] = std::exp(eta_ * (gains_[i] - top));
    total += p[i];
  }
  double u = rng.uniform() * total;
  for (std::size_t i = 0; i < kMembers; ++i) {
    u -= p[i];
    if (u <= 0.0) return i;
  }
  return kMembers - 1;
}

void HedgePortfolio::set_gains(const Vec& gains) {
  EASYBO_REQUIRE(gains.size() == kMembers,
                 "HedgePortfolio::set_gains: one gain per member");
  gains_ = gains;
}

void HedgePortfolio::reward(const Vec& nominee_means) {
  EASYBO_REQUIRE(nominee_means.size() == kMembers,
                 "HedgePortfolio::reward: one mean per member");
  for (std::size_t i = 0; i < kMembers; ++i) {
    gains_[i] += nominee_means[i];
  }
  // Rescale to keep the softmax well-conditioned over long runs.
  const double top = *std::max_element(gains_.begin(), gains_.end());
  if (top > 50.0) {
    for (auto& g : gains_) g -= top - 50.0;
  }
}

}  // namespace easybo::acq
