#include "acq/thompson.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"
#include "linalg/cholesky.h"

namespace easybo::acq {

std::size_t thompson_sample_argmax(const gp::Regressor& model,
                                   const std::vector<Vec>& candidates,
                                   easybo::Rng& rng) {
  EASYBO_REQUIRE(!candidates.empty(), "thompson: no candidates");
  EASYBO_REQUIRE(model.fitted(), "thompson: model not fitted");
  // The joint draw lives in the backend (exact GPs build the m x m
  // posterior covariance, RFF samples weight space); this wrapper only
  // picks the maximizer.
  const Vec f = model.sample_posterior(candidates, rng);
  std::size_t best = 0;
  double best_value = -1e300;
  for (std::size_t i = 0; i < f.size(); ++i) {
    if (f[i] > best_value) {
      best_value = f[i];
      best = i;
    }
  }
  return best;
}

HedgePortfolio::HedgePortfolio(double eta)
    : eta_(eta), gains_(kMembers, 0.0) {
  EASYBO_REQUIRE(eta > 0.0, "HedgePortfolio: eta must be positive");
}

std::size_t HedgePortfolio::choose(easybo::Rng& rng) const {
  // Softmax with the max subtracted for numerical stability.
  const double top = *std::max_element(gains_.begin(), gains_.end());
  Vec p(kMembers);
  double total = 0.0;
  for (std::size_t i = 0; i < kMembers; ++i) {
    p[i] = std::exp(eta_ * (gains_[i] - top));
    total += p[i];
  }
  double u = rng.uniform() * total;
  for (std::size_t i = 0; i < kMembers; ++i) {
    u -= p[i];
    if (u <= 0.0) return i;
  }
  return kMembers - 1;
}

void HedgePortfolio::set_gains(const Vec& gains) {
  EASYBO_REQUIRE(gains.size() == kMembers,
                 "HedgePortfolio::set_gains: one gain per member");
  gains_ = gains;
}

void HedgePortfolio::reward(const Vec& nominee_means) {
  EASYBO_REQUIRE(nominee_means.size() == kMembers,
                 "HedgePortfolio::reward: one mean per member");
  for (std::size_t i = 0; i < kMembers; ++i) {
    gains_[i] += nominee_means[i];
  }
  // Rescale to keep the softmax well-conditioned over long runs.
  const double top = *std::max_element(gains_.begin(), gains_.end());
  if (top > 50.0) {
    for (auto& g : gains_) g -= top - 50.0;
  }
}

}  // namespace easybo::acq
