#include "acq/acquisition.h"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "common/error.h"

namespace easybo::acq {

double norm_pdf(double z) {
  return std::exp(-0.5 * z * z) / std::sqrt(2.0 * std::numbers::pi);
}

double norm_cdf(double z) { return 0.5 * std::erfc(-z / std::numbers::sqrt2); }

// ---------------------------------------------------------------------------
// Ucb
// ---------------------------------------------------------------------------

Ucb::Ucb(const gp::Regressor* model, double kappa)
    : model_(model), kappa_(kappa) {
  EASYBO_REQUIRE(model != nullptr, "Ucb: null model");
  EASYBO_REQUIRE(kappa >= 0.0, "Ucb: kappa must be non-negative");
}

double Ucb::operator()(const Vec& x) const {
  const auto p = model_->predict(x);
  return p.mean + kappa_ * p.stddev();
}

// ---------------------------------------------------------------------------
// Ei / Pi
// ---------------------------------------------------------------------------

Ei::Ei(const gp::Regressor* model, double best_y, double xi)
    : model_(model), best_y_(best_y), xi_(xi) {
  EASYBO_REQUIRE(model != nullptr, "Ei: null model");
}

double Ei::operator()(const Vec& x) const {
  const auto p = model_->predict(x);
  const double sd = p.stddev();
  const double improve = p.mean - best_y_ - xi_;
  if (sd < 1e-12) return std::max(improve, 0.0);
  const double z = improve / sd;
  return improve * norm_cdf(z) + sd * norm_pdf(z);
}

Pi::Pi(const gp::Regressor* model, double best_y, double xi)
    : model_(model), best_y_(best_y), xi_(xi) {
  EASYBO_REQUIRE(model != nullptr, "Pi: null model");
}

double Pi::operator()(const Vec& x) const {
  const auto p = model_->predict(x);
  const double sd = p.stddev();
  const double improve = p.mean - best_y_ - xi_;
  if (sd < 1e-12) return improve > 0.0 ? 1.0 : 0.0;
  return norm_cdf(improve / sd);
}

// ---------------------------------------------------------------------------
// WeightedUcb (Eq. 4 / 8 / 9)
// ---------------------------------------------------------------------------

WeightedUcb::WeightedUcb(const gp::Regressor* mean_model,
                         const gp::Regressor* var_model, double w)
    : mean_model_(mean_model), var_model_(var_model), w_(w) {
  EASYBO_REQUIRE(mean_model != nullptr && var_model != nullptr,
                 "WeightedUcb: null model");
  EASYBO_REQUIRE(w >= 0.0 && w <= 1.0, "WeightedUcb: w must be in [0,1]");
}

double WeightedUcb::operator()(const Vec& x) const {
  const double mu = mean_model_->predict(x).mean;
  const double sd = var_model_->predict(x).stddev();
  return (1.0 - w_) * mu + w_ * sd;
}

Bucb::Bucb(const gp::Regressor* mean_model, const gp::Regressor* var_model,
           double kappa)
    : mean_model_(mean_model), var_model_(var_model), kappa_(kappa) {
  EASYBO_REQUIRE(mean_model != nullptr && var_model != nullptr,
                 "Bucb: null model");
  EASYBO_REQUIRE(kappa >= 0.0, "Bucb: kappa must be non-negative");
}

double Bucb::operator()(const Vec& x) const {
  return mean_model_->predict(x).mean +
         kappa_ * var_model_->predict(x).stddev();
}

double sample_easybo_weight(easybo::Rng& rng, double lambda) {
  EASYBO_REQUIRE(lambda > 0.0, "sample_easybo_weight: lambda must be > 0");
  const double kappa = rng.uniform(0.0, lambda);
  return kappa / (kappa + 1.0);
}

Vec pbo_weight_grid(std::size_t batch_size) {
  EASYBO_REQUIRE(batch_size >= 1, "pbo_weight_grid: batch size must be >= 1");
  if (batch_size == 1) return {0.5};
  Vec w(batch_size);
  for (std::size_t i = 0; i < batch_size; ++i) {
    w[i] = static_cast<double>(i) / static_cast<double>(batch_size - 1);
  }
  return w;
}

// ---------------------------------------------------------------------------
// HighCoveragePenalty (Eq. 6) and pHCBO (Eq. 5)
// ---------------------------------------------------------------------------

HighCoveragePenalty::HighCoveragePenalty(double d, double n_hc)
    : d_(d), n_hc_(n_hc) {
  EASYBO_REQUIRE(d > 0.0, "HC penalty: d must be positive");
  EASYBO_REQUIRE(n_hc > 0.0, "HC penalty: N_HC must be positive");
}

void HighCoveragePenalty::record(const Vec& x) {
  history_.push_back(x);
  while (history_.size() > 5) history_.pop_front();
}

double HighCoveragePenalty::operator()(const Vec& x) const {
  if (history_.empty()) return 0.0;
  // Geometric mean of exp[(d/d_x)^10] over the (up to 5) history points =
  // exp of the mean exponent. Exponents are clamped: the raw value
  // overflows double inside the d-ball, and "astronomically large" is all
  // the penalty needs to express there.
  double exponent_sum = 0.0;
  for (const auto& xj : history_) {
    const double dist = linalg::dist(x, xj);
    if (dist < 1e-12) {
      exponent_sum += 700.0 * static_cast<double>(history_.size());
      break;
    }
    exponent_sum += std::min(std::pow(d_ / dist, 10.0), 700.0);
  }
  const double mean_exponent =
      std::min(exponent_sum / static_cast<double>(history_.size()), 700.0);
  return n_hc_ * std::exp(mean_exponent);
}

PhcboAcquisition::PhcboAcquisition(const gp::Regressor* model, double w,
                                   const HighCoveragePenalty* penalty)
    : base_(model, model, w), penalty_(penalty) {
  EASYBO_REQUIRE(penalty != nullptr, "PhcboAcquisition: null penalty");
}

double PhcboAcquisition::operator()(const Vec& x) const {
  return base_(x) - (*penalty_)(x);
}

// ---------------------------------------------------------------------------
// LocalPenalization (extension baseline)
// ---------------------------------------------------------------------------

LocalPenalization::LocalPenalization(const AcquisitionFn* base,
                                     const gp::Regressor* model,
                                     std::vector<Vec> busy, double lipschitz,
                                     double best_y)
    : base_(base),
      model_(model),
      busy_(std::move(busy)),
      lipschitz_(std::max(lipschitz, 1e-8)),
      best_y_(best_y) {
  EASYBO_REQUIRE(base != nullptr && model != nullptr,
                 "LocalPenalization: null dependency");
}

double LocalPenalization::operator()(const Vec& x) const {
  // Soft-plus shift keeps the base acquisition positive so multiplicative
  // hammers behave (González et al. §3.2).
  const double raw = (*base_)(x);
  double value = std::log1p(std::exp(std::clamp(raw, -30.0, 30.0)));
  for (const auto& xj : busy_) {
    const auto p = model_->predict(xj);
    const double sd = std::max(p.stddev(), 1e-9);
    // Hammer: probability that x lies outside the exclusion ball around xj.
    const double z =
        (lipschitz_ * linalg::dist(x, xj) - (best_y_ - p.mean)) /
        (std::numbers::sqrt2 * sd);
    value *= norm_cdf(z);
  }
  return value;
}

double estimate_lipschitz(const gp::Regressor& model, easybo::Rng& rng,
                          std::size_t probes) {
  EASYBO_REQUIRE(probes >= 2, "estimate_lipschitz: need at least two probes");
  const std::size_t d = model.dim();
  double best = 1e-3;
  // Finite differences of the GP mean between random unit-cube pairs.
  for (std::size_t i = 0; i < probes; ++i) {
    Vec a(d), b(d);
    for (std::size_t j = 0; j < d; ++j) {
      a[j] = rng.uniform();
      b[j] = rng.uniform();
    }
    const double dist = linalg::dist(a, b);
    if (dist < 1e-9) continue;
    const double slope =
        std::abs(model.predict(a).mean - model.predict(b).mean) / dist;
    best = std::max(best, slope);
  }
  return best;
}

}  // namespace easybo::acq
