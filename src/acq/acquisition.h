#pragma once
/// \file acquisition.h
/// \brief Acquisition functions: UCB/EI/PI, pBO (Eq. 4), pHCBO (Eq. 5-6),
/// and the EasyBO randomized-weight acquisition (Eq. 8) with the
/// hallucination penalization (Eq. 9).
///
/// All acquisitions are MAXIMIZED and operate in the BO loop's normalized
/// model space (inputs in [0,1]^d, z-scored targets). They hold non-owning
/// pointers to GP models owned by the BO driver; a driver must keep the
/// models alive and fitted while an acquisition referencing them is in use.

#include <deque>
#include <memory>

#include "common/rng.h"
#include "gp/regressor.h"

namespace easybo::acq {

using gp::Regressor;
using linalg::Vec;

/// Interface: a scalar utility over the normalized design space.
class AcquisitionFn {
 public:
  virtual ~AcquisitionFn() = default;
  virtual double operator()(const Vec& x) const = 0;
};

/// Upper confidence bound, Eq. 3: mu(x) + kappa * sigma(x).
/// With kappa > 0 this is also what the paper's experiments call "LCB" (an
/// optimistic bound used for maximization).
class Ucb final : public AcquisitionFn {
 public:
  Ucb(const gp::Regressor* model, double kappa);
  double operator()(const Vec& x) const override;

  double kappa() const { return kappa_; }

 private:
  const gp::Regressor* model_;
  double kappa_;
};

/// Expected improvement over the incumbent best (maximization form):
/// EI(x) = (mu - y* - xi) Phi(z) + sigma phi(z), z = (mu - y* - xi)/sigma.
class Ei final : public AcquisitionFn {
 public:
  Ei(const gp::Regressor* model, double best_y, double xi = 0.0);
  double operator()(const Vec& x) const override;

 private:
  const gp::Regressor* model_;
  double best_y_;
  double xi_;
};

/// Probability of improvement: PI(x) = Phi((mu - y* - xi)/sigma).
class Pi final : public AcquisitionFn {
 public:
  Pi(const gp::Regressor* model, double best_y, double xi = 0.0);
  double operator()(const Vec& x) const override;

 private:
  const gp::Regressor* model_;
  double best_y_;
  double xi_;
};

/// Weighted UCB family shared by pBO (Eq. 4), EasyBO (Eq. 8) and penalized
/// EasyBO (Eq. 9):
///     alpha(x, w) = (1 - w) * mu(x) + w * sigma_hat(x)
/// where mu comes from \p mean_model (always fitted on observed data only)
/// and sigma_hat from \p var_model. Passing the same model twice gives the
/// unpenalized Eq. 4/8; passing the hallucinated posterior
/// (TrainableRegressor::hallucinate) as var_model gives Eq. 9.
class WeightedUcb final : public AcquisitionFn {
 public:
  WeightedUcb(const gp::Regressor* mean_model, const gp::Regressor* var_model,
              double w);
  double operator()(const Vec& x) const override;

  double weight() const { return w_; }

 private:
  const gp::Regressor* mean_model_;
  const gp::Regressor* var_model_;
  double w_;
};

/// BUCB (Desautels et al., JMLR'14) batch acquisition: a plain UCB whose
/// variance comes from the hallucinated model (pending points conditioned
/// at their predictive mean) while the mean comes from observed data:
///     alpha(x) = mu(x) + kappa * sigma_hat(x).
/// This is the penalization strategy EasyBO's Eq. 9 cites; exposed as a
/// batch baseline beyond the paper's roster.
class Bucb final : public AcquisitionFn {
 public:
  Bucb(const gp::Regressor* mean_model, const gp::Regressor* var_model,
       double kappa);
  double operator()(const Vec& x) const override;

 private:
  const gp::Regressor* mean_model_;
  const gp::Regressor* var_model_;
  double kappa_;
};

/// EasyBO's weight sampling (§III-B): kappa ~ U[0, lambda], w = kappa/(kappa+1).
/// The induced density of w rises toward 1, maintaining batch diversity once
/// sigma has shrunk below mu. The paper fixes lambda = 6.
double sample_easybo_weight(easybo::Rng& rng, double lambda = 6.0);

/// pBO's fixed uniform weight grid, w_i = (i-1)/(B-1) (w = 0.5 for B = 1).
Vec pbo_weight_grid(std::size_t batch_size);

/// pHCBO's high-coverage penalty (Eq. 6):
///   alpha_HC(x) = N_HC * exp( (1/5) * sum_{j=1..5} (d / ||x - x_j||)^10 )
/// over the last (up to) 5 query points recorded for the same weight index.
/// The exponent is clamped to avoid overflow; inside the d-ball around a
/// previous query the penalty is astronomically large, as intended.
class HighCoveragePenalty {
 public:
  /// \param d     penalization radius (normalized space); paper: manual.
  /// \param n_hc  penalty magnitude.
  explicit HighCoveragePenalty(double d = 0.1, double n_hc = 1.0);

  /// Records a new query point for this weight's history (keeps last 5).
  void record(const Vec& x);

  /// Penalty value at x; 0 when no history yet.
  double operator()(const Vec& x) const;

  std::size_t history_size() const { return history_.size(); }

  /// The recorded history, oldest first — checkpoint serialization reads
  /// it here and rebuilds via record() calls in order.
  const std::deque<Vec>& history() const { return history_; }

 private:
  double d_;
  double n_hc_;
  std::deque<Vec> history_;
};

/// pHCBO acquisition (Eq. 5): alpha_pBO(x, w) - alpha_HC(x).
class PhcboAcquisition final : public AcquisitionFn {
 public:
  PhcboAcquisition(const gp::Regressor* model, double w,
                   const HighCoveragePenalty* penalty);
  double operator()(const Vec& x) const override;

 private:
  WeightedUcb base_;
  const HighCoveragePenalty* penalty_;
};

/// Local penalization (González et al., AISTATS'16) baseline extension:
/// multiplies a base acquisition (shifted to be positive) by hammer
/// functions centered at busy points. Used for the batch baseline "LP".
class LocalPenalization final : public AcquisitionFn {
 public:
  /// \param base       the acquisition to penalize (not owned)
  /// \param model      GP used for the hammer radii (not owned)
  /// \param busy       points under evaluation (copied)
  /// \param lipschitz  estimated Lipschitz constant of the objective
  /// \param best_y     current incumbent (the estimated max M)
  LocalPenalization(const AcquisitionFn* base, const gp::Regressor* model,
                    std::vector<Vec> busy, double lipschitz, double best_y);
  double operator()(const Vec& x) const override;

 private:
  const AcquisitionFn* base_;
  const gp::Regressor* model_;
  std::vector<Vec> busy_;
  double lipschitz_;
  double best_y_;
};

/// Crude Lipschitz estimate for LP: max gradient magnitude proxy from GP
/// mean differences over random probe pairs.
double estimate_lipschitz(const gp::Regressor& model, easybo::Rng& rng,
                          std::size_t probes = 64);

/// Standard normal pdf / cdf (shared by EI/PI/LP).
double norm_pdf(double z);
double norm_cdf(double z);

}  // namespace easybo::acq
