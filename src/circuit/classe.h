#pragma once
/// \file classe.h
/// \brief Class-E power amplifier benchmark (paper §IV-B, 12 design
/// variables).
///
/// The paper optimizes a 180 nm class-E PA with HSPICE transient analysis:
///     FOM = 3 * PAE + Pout                               (Eq. 11)
/// with PAE the power-added efficiency and Pout the output power.
///
/// Our substitute is a steady-state analytic class-E model built on the
/// classic Sokal/Raab design equations with non-idealities, which together
/// shape the same narrow high-efficiency ridge the transient simulation
/// exposes:
///   * switch conduction loss via Ron(W, Vg)                  (1/(1+1.365 Ron/R))
///   * shunt-capacitance mistuning: C1 + Coss(W) vs the ZVS optimum
///     0.1836/(w R), Gaussian penalty on the relative detuning
///   * series reactance mistuning: X(L0, C0) + Im(Zmatch) vs 1.1525 R
///   * L-match (Lm, Cm) transforming the 50-ohm load down to R, with
///     inductor ESR loss (finite unloaded Q)
///   * duty-cycle deviation from 50% (driver bias Vb shifts the effective
///     duty), Gaussian penalty
///   * finite DC-feed choke Lc (ripple penalty when w Lc / R is small)
///   * gate-drive power of the switch + tapered driver (reduces PAE)
///   * soft drain-breakdown penalty (peak voltage 3.56 Vdd vs BVdss)
///
/// Design variables:
///   x[0]  w     switch width                [0.5, 8]    mm
///   x[1]  wd    driver width                [0.02, 1]   mm
///   x[2]  vg    gate drive amplitude        [0.8, 1.8]  V
///   x[3]  vb    driver bias                 [0.5, 1.5]  V
///   x[4]  duty  nominal duty cycle          [0.3, 0.7]
///   x[5]  vdd   supply voltage              [0.5, 3.0]  V
///   x[6]  c1    external shunt capacitor    [0.1, 60]   pF
///   x[7]  l0    series filter inductor      [1, 20]     nH
///   x[8]  c0    series filter capacitor     [1, 60]     pF
///   x[9]  lm    matching inductor           [0.5, 10]   nH
///   x[10] cm    matching capacitor          [1, 50]     pF
///   x[11] lc    DC-feed choke               [5, 100]    nH

#include "linalg/vec.h"
#include "opt/objective.h"

namespace easybo::circuit {

using linalg::Vec;

/// Performance of one class-E design point.
struct ClassEPerformance {
  double pout_w = 0.0;       ///< output power delivered to the 50-ohm load
  double pae = 0.0;          ///< power-added efficiency in [0, 1)
  double drain_eff = 0.0;    ///< drain efficiency in [0, 1)
  double r_loaded = 0.0;     ///< transformed load resistance seen by switch
  double fom = 0.0;          ///< Eq. 11: 3*PAE + Pout
};

inline constexpr std::size_t kClassEDim = 12;

/// Operating frequency of the PA (fixed, not a design variable).
inline constexpr double kClassEFreqHz = 900e6;

/// External load the PA drives.
inline constexpr double kClassELoadOhm = 50.0;

/// Search box for the 12 design variables (order documented above; pF/nH/mm
/// scaled units exactly as listed).
opt::Bounds classe_bounds();

/// Evaluates a design point. Never throws for in-box designs.
ClassEPerformance evaluate_classe(const Vec& x);

/// The FOM alone, as an opt::Objective-compatible callable.
double classe_fom(const Vec& x);

}  // namespace easybo::circuit
