#pragma once
/// \file sim_time_model.h
/// \brief Deterministic design-point-dependent simulation duration model.
///
/// The paper's central asynchronous-vs-synchronous comparison exists only
/// because "different design parameters can lead to different simulation
/// time consumption" (§I). HSPICE run time depends on the design point (and
/// on machine noise); this model substitutes a deterministic function of the
/// design point so every experiment is exactly reproducible:
///
///   t(x) = base * (lo + span * s(x)) * exp(sigma * z(x))
///
/// where s(x) in [0,1] is a fixed pseudo-random weighted mean of the
/// normalized coordinates (systematic dependence: "harder" corners of the
/// space simulate longer) and z(x) is a standard-normal variate hashed from
/// the bits of x (per-design jitter; same x, same time — like re-running the
/// same deck). Parameters are calibrated so the mean sequential times match
/// the scale of the paper's Table I/II and so the coefficient of variation
/// reproduces the paper's observed async savings (modest for the op-amp,
/// large for the class-E PA).

#include <cstdint>

#include "opt/objective.h"

namespace easybo::circuit {

using linalg::Vec;

/// Deterministic duration model (virtual seconds per evaluation).
class SimTimeModel {
 public:
  /// \param base_seconds  overall time scale (roughly the mean duration)
  /// \param coord_span    strength of the systematic coordinate dependence
  ///                      (0 = none; 0.8 means the slowest corner is ~1.8x
  ///                      the fastest)
  /// \param sigma         log-normal jitter sigma (CV of the random part)
  /// \param bounds        design box used to normalize coordinates
  /// \param salt          seeds the fixed coordinate weights and the hash
  SimTimeModel(double base_seconds, double coord_span, double sigma,
               opt::Bounds bounds, std::uint64_t salt);

  /// Duration in virtual seconds for design point x (inside the box).
  double operator()(const Vec& x) const;

  double base_seconds() const { return base_; }

 private:
  double base_;
  double span_;
  double sigma_;
  opt::Bounds bounds_;
  std::uint64_t salt_;
  Vec weights_;  // fixed positive weights, sum 1
};

/// Standard-normal variate deterministically hashed from the bits of x.
/// Exposed for tests.
double hash_normal(const Vec& x, std::uint64_t salt);

}  // namespace easybo::circuit
