#include "circuit/testfunc.h"

#include <cmath>
#include <numbers>

#include "common/error.h"

namespace easybo::circuit {

using linalg::Vec;

TestFunction branin() {
  TestFunction f;
  f.name = "branin";
  f.bounds.lower = {-5.0, 0.0};
  f.bounds.upper = {10.0, 15.0};
  f.fn = [](const Vec& x) {
    constexpr double a = 1.0;
    const double b = 5.1 / (4.0 * std::numbers::pi * std::numbers::pi);
    const double c = 5.0 / std::numbers::pi;
    constexpr double r = 6.0;
    constexpr double s = 10.0;
    const double t = 1.0 / (8.0 * std::numbers::pi);
    const double term = x[1] - b * x[0] * x[0] + c * x[0] - r;
    const double value =
        a * term * term + s * (1.0 - t) * std::cos(x[0]) + s;
    return -value;
  };
  f.max_value = -0.397887;
  f.max_location = {std::numbers::pi, 2.275};
  return f;
}

TestFunction ackley(std::size_t dim) {
  EASYBO_REQUIRE(dim >= 1, "ackley: dim >= 1");
  TestFunction f;
  f.name = "ackley" + std::to_string(dim);
  f.bounds.lower = Vec(dim, -32.768);
  f.bounds.upper = Vec(dim, 32.768);
  f.fn = [dim](const Vec& x) {
    constexpr double a = 20.0;
    constexpr double b = 0.2;
    const double c = 2.0 * std::numbers::pi;
    double sum_sq = 0.0, sum_cos = 0.0;
    for (double v : x) {
      sum_sq += v * v;
      sum_cos += std::cos(c * v);
    }
    const double n = static_cast<double>(dim);
    const double value = -a * std::exp(-b * std::sqrt(sum_sq / n)) -
                         std::exp(sum_cos / n) + a + std::numbers::e;
    return -value;
  };
  f.max_value = 0.0;
  f.max_location = Vec(dim, 0.0);
  return f;
}

TestFunction rosenbrock(std::size_t dim) {
  EASYBO_REQUIRE(dim >= 2, "rosenbrock: dim >= 2");
  TestFunction f;
  f.name = "rosenbrock" + std::to_string(dim);
  f.bounds.lower = Vec(dim, -5.0);
  f.bounds.upper = Vec(dim, 10.0);
  f.fn = [](const Vec& x) {
    double value = 0.0;
    for (std::size_t i = 0; i + 1 < x.size(); ++i) {
      const double a = x[i + 1] - x[i] * x[i];
      const double b = x[i] - 1.0;
      value += 100.0 * a * a + b * b;
    }
    return -value;
  };
  f.max_value = 0.0;
  f.max_location = Vec(dim, 1.0);
  return f;
}

TestFunction hartmann6() {
  TestFunction f;
  f.name = "hartmann6";
  f.bounds.lower = Vec(6, 0.0);
  f.bounds.upper = Vec(6, 1.0);
  f.fn = [](const Vec& x) {
    static const double alpha[4] = {1.0, 1.2, 3.0, 3.2};
    static const double A[4][6] = {
        {10, 3, 17, 3.5, 1.7, 8},
        {0.05, 10, 17, 0.1, 8, 14},
        {3, 3.5, 1.7, 10, 17, 8},
        {17, 8, 0.05, 10, 0.1, 14}};
    static const double P[4][6] = {
        {0.1312, 0.1696, 0.5569, 0.0124, 0.8283, 0.5886},
        {0.2329, 0.4135, 0.8307, 0.3736, 0.1004, 0.9991},
        {0.2348, 0.1451, 0.3522, 0.2883, 0.3047, 0.6650},
        {0.4047, 0.8828, 0.8732, 0.5743, 0.1091, 0.0381}};
    double outer = 0.0;
    for (int i = 0; i < 4; ++i) {
      double inner = 0.0;
      for (int j = 0; j < 6; ++j) {
        const double diff = x[static_cast<std::size_t>(j)] - P[i][j];
        inner += A[i][j] * diff * diff;
      }
      outer += alpha[i] * std::exp(-inner);
    }
    return outer;  // Hartmann-6 is conventionally maximized as-is
  };
  f.max_value = 3.32237;
  f.max_location = {0.20169, 0.150011, 0.476874, 0.275332, 0.311652, 0.6573};
  return f;
}

TestFunction levy(std::size_t dim) {
  EASYBO_REQUIRE(dim >= 1, "levy: dim >= 1");
  TestFunction f;
  f.name = "levy" + std::to_string(dim);
  f.bounds.lower = Vec(dim, -10.0);
  f.bounds.upper = Vec(dim, 10.0);
  f.fn = [](const Vec& x) {
    auto wi = [](double v) { return 1.0 + (v - 1.0) / 4.0; };
    const double w1 = wi(x.front());
    double value = std::sin(std::numbers::pi * w1) *
                   std::sin(std::numbers::pi * w1);
    for (std::size_t i = 0; i + 1 < x.size(); ++i) {
      const double w = wi(x[i]);
      const double s = std::sin(std::numbers::pi * w + 1.0);
      value += (w - 1.0) * (w - 1.0) * (1.0 + 10.0 * s * s);
    }
    const double wd = wi(x.back());
    const double sd = std::sin(2.0 * std::numbers::pi * wd);
    value += (wd - 1.0) * (wd - 1.0) * (1.0 + sd * sd);
    return -value;
  };
  f.max_value = 0.0;
  f.max_location = Vec(dim, 1.0);
  return f;
}

TestFunction sphere(std::size_t dim) {
  EASYBO_REQUIRE(dim >= 1, "sphere: dim >= 1");
  TestFunction f;
  f.name = "sphere" + std::to_string(dim);
  f.bounds.lower = Vec(dim, -5.0);
  f.bounds.upper = Vec(dim, 5.0);
  f.fn = [](const Vec& x) {
    double value = 0.0;
    for (double v : x) value += v * v;
    return -value;
  };
  f.max_value = 0.0;
  f.max_location = Vec(dim, 0.0);
  return f;
}

}  // namespace easybo::circuit
