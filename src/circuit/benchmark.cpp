#include "circuit/benchmark.h"

#include "circuit/classe.h"
#include "circuit/opamp.h"

namespace easybo::circuit {

SizingBenchmark make_opamp_benchmark() {
  auto bounds = opamp_bounds();
  SizingBenchmark b{
      /*name=*/"opamp",
      /*bounds=*/bounds,
      /*fom=*/[](const Vec& x) { return opamp_fom(x); },
      // Mean ~38.7 s (paper: 150 sims in ~1h37m sequential); mild
      // systematic spread, sigma 0.12 -> CV ~12%.
      /*sim_time=*/SimTimeModel(36.0, 0.30, 0.12, bounds, /*salt=*/0x0A11u),
  };
  b.init_points = 20;
  b.max_sims = 150;
  b.de_sims = 20000;
  return b;
}

SizingBenchmark make_classe_benchmark() {
  auto bounds = classe_bounds();
  SizingBenchmark b{
      /*name=*/"classe",
      /*bounds=*/bounds,
      /*fom=*/[](const Vec& x) { return classe_fom(x); },
      // Mean ~52.7 s (paper: 450 sims in ~6h35m sequential); strong
      // systematic spread, sigma 0.40 -> CV ~45%: transient analyses of
      // switching PAs vary much more than op-amp AC/ac sweeps.
      /*sim_time=*/SimTimeModel(44.0, 0.80, 0.40, bounds, /*salt=*/0xC1A55Eu),
  };
  b.init_points = 20;
  b.max_sims = 450;
  b.de_sims = 15000;
  return b;
}

}  // namespace easybo::circuit
