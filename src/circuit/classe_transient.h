#pragma once
/// \file classe_transient.h
/// \brief Time-domain (transient) simulation of the class-E power stage.
///
/// The paper evaluates its class-E PA with HSPICE transient analysis; the
/// fast benchmark objective in classe.h is an analytic steady-state model.
/// This module provides the missing middle: an actual switched-circuit
/// transient simulator for the class-E power stage, used to validate the
/// analytic model (see bench/ablation_transient) and available as a
/// drop-in, more expensive objective.
///
/// Topology simulated (the canonical class-E stage):
///
///   Vdd --- Lc (choke) ---+--- switch (Ron / off) --- gnd
///                         |
///                         +--- C1 (shunt) --- gnd
///                         |
///                         +--- L0 --- C0 ---+--- R (loaded) --- gnd
///
/// Four state variables: choke current i_Lc, shunt voltage v_C1, resonator
/// current i_L0 and resonator voltage v_C0. Within each switch phase the
/// network is linear (dx/dt = A_phase x + c_phase), so each fixed step is
/// advanced with the trapezoidal rule whose per-phase update matrices are
/// precomputed — A-stable, which matters because the on-phase time constant
/// Ron*C1 can be far below the step size. The simulation runs until the
/// cycle-to-cycle state change falls below a tolerance (periodic steady
/// state), then one more cycle is integrated to measure powers.

#include <cstddef>

namespace easybo::circuit {

/// Electrical parameters of the transient run (SI units).
struct ClassETransientParams {
  double vdd = 2.5;        ///< supply voltage [V]
  double ron = 0.3;        ///< switch on-resistance [ohm]
  double lc = 50e-9;       ///< DC-feed choke [H]
  double c1 = 30e-12;      ///< total shunt capacitance (incl. Coss) [F]
  double l0 = 2e-9;        ///< series resonator inductance [H]
  double c0 = 40e-12;      ///< series resonator capacitance [F]
  double r_load = 1.5;     ///< loaded resistance seen by the resonator [ohm]
  double freq = 900e6;     ///< switching frequency [Hz]
  double duty = 0.5;       ///< switch on-fraction of the period
  std::size_t steps_per_cycle = 512;  ///< trapezoidal resolution
  std::size_t max_cycles = 200;       ///< steady-state search limit
  double ss_tol = 1e-4;    ///< relative cycle-to-cycle tolerance
};

/// Measured quantities from the steady-state cycle.
struct ClassETransientResult {
  double p_out = 0.0;       ///< average power into r_load [W]
  double p_dc = 0.0;        ///< average supply power Vdd * mean(i_Lc) [W]
  double drain_eff = 0.0;   ///< p_out / p_dc (0 when p_dc ~ 0)
  double v_switch_peak = 0.0;  ///< peak drain voltage [V]
  double v_switch_at_on = 0.0; ///< |v_C1| at the turn-on instant [V]
                               ///< (~0 when the ZVS condition is met)
  std::size_t cycles_run = 0;  ///< cycles until steady state
  bool converged = false;      ///< steady state reached within max_cycles
};

/// Runs the transient simulation to periodic steady state and measures the
/// last cycle. Throws InvalidArgument on non-physical parameters.
ClassETransientResult simulate_classe_transient(
    const ClassETransientParams& params);

}  // namespace easybo::circuit
