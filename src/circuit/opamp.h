#pragma once
/// \file opamp.h
/// \brief Two-stage Miller-compensated operational amplifier benchmark
/// (paper §IV-A, 10 design variables).
///
/// The paper sizes an op-amp in a 180 nm process with HSPICE and maximizes
///     FOM = 1.2 * GAIN + 10 * UGF + 1.6 * PM            (Eq. 10)
/// Our substitute builds the textbook two-stage Miller op-amp small-signal
/// equivalent — differential pair, current-mirror load, common-source
/// second stage, Miller capacitor with nulling resistor, capacitive load —
/// from the square-law device model (mosfet.h), then runs an AC sweep on
/// the MNA simulator (src/spice) and measures GAIN (dB), UGF and PM exactly
/// as an HSPICE .measure block would. Units in the FOM: GAIN in dB, UGF in
/// GHz, PM in degrees (the paper does not state its metric units; these
/// make the three terms genuinely compete, giving an interior optimum that
/// couples gm1/Cc, gm6/CL and the nulling resistor).
///
/// Design variables (all lengths in um, currents in A, caps in F, R in ohm):
///   x[0] w12    diff-pair width            [2, 100]
///   x[1] l12    diff-pair length           [0.18, 2]
///   x[2] w34    mirror-load width          [2, 100]
///   x[3] l34    mirror-load length         [0.18, 2]
///   x[4] w6     2nd-stage driver width     [5, 300]
///   x[5] l6     2nd-stage driver length    [0.18, 2]
///   x[6] itail  tail current               [10u, 500u]
///   x[7] i2     2nd-stage current          [50u, 2m]
///   x[8] cc     Miller capacitor           [0.2p, 5p]
///   x[9] rz     nulling resistor           [10, 10k]

#include "linalg/vec.h"
#include "opt/objective.h"

namespace easybo::circuit {

using linalg::Vec;

/// Measured performance of one op-amp design point.
struct OpAmpPerformance {
  double gain_db = 0.0;
  double ugf_hz = 0.0;
  double pm_deg = 0.0;
  bool stable = false;   ///< true when a unity-gain crossing exists
  double fom = 0.0;      ///< Eq. 10 with the unit conventions above
};

/// Number of design variables.
inline constexpr std::size_t kOpAmpDim = 10;

/// Search box for the 10 design variables (order documented above).
opt::Bounds opamp_bounds();

/// Full small-signal evaluation of a design point (AC sweep + measure).
/// Requires x inside (or on) the bounds; never throws for in-box designs —
/// unusable designs (no unity-gain crossing) return a strongly negative FOM
/// so optimization loops keep running.
OpAmpPerformance evaluate_opamp(const Vec& x);

/// The FOM alone, as an opt::Objective-compatible callable.
double opamp_fom(const Vec& x);

/// Load capacitance the amplifier drives (fixed, not a design variable).
inline constexpr double kOpAmpLoadCap = 3e-12;

}  // namespace easybo::circuit
