#include "circuit/mosfet.h"

#include <cmath>

#include "common/error.h"

namespace easybo::circuit {

MosProcess MosProcess::nmos_180() {
  MosProcess p;
  p.kp = 170e-6;      // mu_n * Cox
  p.vth = 0.45;
  p.lambda0 = 0.08;   // lambda = 0.08/L(um) 1/V
  p.cox = 8.5e-15;    // 8.5 fF/um^2
  p.cov = 0.35e-15;   // 0.35 fF/um
  p.cj = 0.8e-15;     // 0.8 fF/um
  return p;
}

MosProcess MosProcess::pmos_180() {
  MosProcess p;
  p.kp = 60e-6;       // mu_p * Cox (holes ~3x slower)
  p.vth = 0.45;
  p.lambda0 = 0.10;
  p.cox = 8.5e-15;
  p.cov = 0.35e-15;
  p.cj = 0.9e-15;
  return p;
}

MosSmallSignal mos_small_signal(MosType type, double w_um, double l_um,
                                double id) {
  EASYBO_REQUIRE(w_um > 0.0 && l_um > 0.0, "MOSFET W and L must be positive");
  EASYBO_REQUIRE(id > 0.0, "drain current must be positive");
  const MosProcess p =
      (type == MosType::Nmos) ? MosProcess::nmos_180() : MosProcess::pmos_180();

  MosSmallSignal ss;
  const double w_over_l = w_um / l_um;
  ss.gm = std::sqrt(2.0 * p.kp * w_over_l * id);
  ss.vov = std::sqrt(2.0 * id / (p.kp * w_over_l));
  ss.gds = (p.lambda0 / l_um) * id;
  ss.ro = 1.0 / ss.gds;
  ss.cgs = (2.0 / 3.0) * w_um * l_um * p.cox + w_um * p.cov;
  ss.cgd = w_um * p.cov;
  ss.cdb = w_um * p.cj;
  return ss;
}

}  // namespace easybo::circuit
