#pragma once
/// \file testfunc.h
/// \brief Standard synthetic test functions for unit tests and ablations.
///
/// All functions are returned in MAXIMIZATION form (negated classics) so
/// they plug directly into the BO/opt stack. Known optima are exposed for
/// convergence assertions.

#include <string>

#include "opt/objective.h"

namespace easybo::circuit {

/// A synthetic benchmark: objective (maximize), box, known optimum.
struct TestFunction {
  std::string name;
  opt::Bounds bounds;
  opt::Objective fn;          ///< maximize
  double max_value = 0.0;     ///< global maximum value
  linalg::Vec max_location;   ///< one global maximizer (empty if many)
};

/// Branin (2-D): three global minima, min = 0.397887 -> max = -0.397887.
TestFunction branin();

/// Ackley (d-D): single global minimum 0 at the origin -> max = 0.
TestFunction ackley(std::size_t dim);

/// Rosenbrock (d-D): banana valley, min 0 at (1,...,1) -> max = 0.
TestFunction rosenbrock(std::size_t dim);

/// Hartmann-6 (6-D): max = 3.32237 (already a maximization classic).
TestFunction hartmann6();

/// Levy (d-D): min 0 at (1,...,1) -> max = 0.
TestFunction levy(std::size_t dim);

/// Sphere (d-D): min 0 at the origin -> max = 0. The easiest sanity check.
TestFunction sphere(std::size_t dim);

}  // namespace easybo::circuit
