#include "circuit/classe.h"

#include <algorithm>
#include <cmath>
#include <complex>
#include <numbers>

#include "common/error.h"

namespace easybo::circuit {

namespace {

// Technology-flavored constants for the 180 nm (thick-oxide / cascode) PA
// device. Ron is inversely proportional to width and gate overdrive;
// capacitances scale with width.
constexpr double kVth = 0.5;           // V
constexpr double kRonSpec = 1.5;       // ohm * mm * V  (Ron = spec/(W*(Vg-Vth)))
constexpr double kCossPerMm = 0.9e-12; // F/mm, switch output capacitance
constexpr double kCgPerMm = 3.5e-12;   // F/mm, switch input capacitance
constexpr double kDriverTaper = 4.0;   // tapered-buffer capacitance overhead
constexpr double kIndQ = 25.0;         // unloaded Q of integrated inductors
constexpr double kBvdss = 9.5;        // V, soft drain-breakdown knee

}  // namespace

opt::Bounds classe_bounds() {
  opt::Bounds b;
  //          w    wd    vg   vb   duty vdd  c1(pF) l0(nH) c0(pF) lm(nH) cm(pF) lc(nH)
  b.lower = {0.5, 0.02, 0.8, 0.5, 0.3, 0.5, 0.1, 1.0, 1.0, 0.5, 1.0, 5.0};
  b.upper = {8.0, 1.0, 1.8, 1.5, 0.7, 3.0, 60.0, 20.0, 60.0, 10.0, 50.0, 100.0};
  return b;
}

ClassEPerformance evaluate_classe(const Vec& x) {
  EASYBO_REQUIRE(x.size() == kClassEDim, "class-E design point must be 12-D");
  const double w = x[0];            // mm
  const double wd = x[1];           // mm
  const double vg = x[2];           // V
  const double vb = x[3];           // V
  const double duty = x[4];
  const double vdd = x[5];          // V
  const double c1 = x[6] * 1e-12;   // F
  const double l0 = x[7] * 1e-9;    // H
  const double c0 = x[8] * 1e-12;   // F
  const double lm = x[9] * 1e-9;    // H
  const double cm = x[10] * 1e-12;  // F
  const double lc = x[11] * 1e-9;   // H

  const double omega = 2.0 * std::numbers::pi * kClassEFreqHz;
  ClassEPerformance perf;

  // --- Load transformation: RL shunted by Cm, then series Lm. ---
  const std::complex<double> jwcm(0.0, omega * cm);
  std::complex<double> zload =
      kClassELoadOhm / (1.0 + jwcm * kClassELoadOhm);
  zload += std::complex<double>(0.0, omega * lm);
  const double r = std::max(zload.real(), 1e-3);
  const double x_match = zload.imag();
  perf.r_loaded = r;

  // --- Series filter reactance and its ESR loss (finite inductor Q). ---
  const double x_filter = omega * l0 - 1.0 / (omega * c0);
  const double esr = omega * (l0 + lm) / kIndQ;
  const double eta_filter = r / (r + esr);

  // --- Ideal class-E targets at this R (Sokal design equations, D=0.5). ---
  const double c_shunt_opt = 0.1836 / (omega * r);
  const double x_opt = 1.1525 * r;
  const double pout_ideal = 0.5768 * vdd * vdd / r;

  // --- Switch conduction loss. ---
  const double vov = std::max(vg - kVth, 0.05);
  const double ron = kRonSpec / (w * vov);
  const double eta_cond = 1.0 / (1.0 + 1.365 * ron / r);

  // --- Tuning penalties: shunt capacitance and net series reactance. ---
  const double c_shunt = c1 + kCossPerMm * w;
  const double dc1 = (c_shunt - c_shunt_opt) / c_shunt_opt;
  const double dx = (x_filter + x_match - x_opt) / r;
  // Heavy-tailed (Cauchy-like) penalties: detuned designs still show a
  // slope toward the optimum, like the gradual efficiency degradation a
  // transient simulation exhibits (a hard exp(-x^2) cliff would leave the
  // optimizer blind far from the ridge).
  const double eta_tune =
      1.0 / ((1.0 + 0.9 * dc1 * dc1) * (1.0 + 0.3 * dx * dx));

  // --- Effective duty cycle (driver bias shifts the switching threshold)
  //     and its Gaussian penalty around the 50% optimum. ---
  const double duty_eff = std::clamp(duty + 0.15 * (vb - 0.9), 0.05, 0.95);
  const double dd = (duty_eff - 0.5) / 0.19;
  const double eta_duty = 1.0 / (1.0 + dd * dd);

  // --- Finite DC-feed choke: current ripple penalty. ---
  const double choke_ratio = omega * lc / (10.0 * r);
  const double eta_choke = choke_ratio / (choke_ratio + 0.35);

  // --- Switching (transition) loss: the driver must be ~W/15 wide to slew
  //     the gate; undersized drivers leave the switch in its linear region
  //     during transitions. ---
  const double drive_ratio = w / (15.0 * std::max(wd, 1e-3));
  const double eta_sw = 1.0 / (1.0 + 0.06 * drive_ratio);

  // --- Soft drain-breakdown penalty: class-E peak is ~3.56 Vdd. ---
  const double v_peak = 3.56 * vdd;
  const double over = std::max(v_peak - kBvdss, 0.0) / 2.0;
  const double eta_bv = std::exp(-over * over);

  perf.drain_eff =
      eta_cond * eta_tune * eta_duty * eta_choke * eta_sw * eta_bv;
  perf.pout_w = pout_ideal * perf.drain_eff * eta_filter;

  // --- Gate-drive power (switch gate + tapered driver chain). ---
  const double cg_total = kCgPerMm * (w + kDriverTaper * wd);
  const double p_drive = cg_total * vg * vg * kClassEFreqHz;

  const double p_dc = pout_ideal * eta_filter > 0.0
                          ? perf.pout_w / std::max(perf.drain_eff, 1e-6)
                          : 0.0;
  const double pae_raw =
      p_dc + p_drive > 1e-12 ? (perf.pout_w - p_drive) / (p_dc + p_drive)
                             : 0.0;
  perf.pae = std::max(pae_raw, -1.0);  // deeply negative PAE is clamped

  perf.fom = 3.0 * perf.pae + perf.pout_w;
  return perf;
}

double classe_fom(const Vec& x) { return evaluate_classe(x).fom; }

}  // namespace easybo::circuit
