#include "circuit/classe_transient.h"

#include <array>
#include <cmath>
#include <vector>

#include "common/error.h"
#include "linalg/lu.h"

namespace easybo::circuit {

namespace {

constexpr std::size_t kStates = 4;  // [i_Lc, v_C1, i_L0, v_C0]

using State = std::array<double, kStates>;

/// Precomputed trapezoidal step for one switch phase:
/// x_{n+1} = M x_n + k,  with M = (I - h/2 A)^{-1}(I + h/2 A) and
/// k = (I - h/2 A)^{-1} h c.
struct PhaseStep {
  std::array<double, kStates * kStates> m{};
  State k{};

  State advance(const State& x) const {
    State next{};
    for (std::size_t r = 0; r < kStates; ++r) {
      double acc = k[r];
      for (std::size_t c = 0; c < kStates; ++c) {
        acc += m[r * kStates + c] * x[c];
      }
      next[r] = acc;
    }
    return next;
  }
};

/// System matrices for the class-E stage; g_sw = 1/Ron (on) or 0 (off).
///   d iLc/dt = (Vdd - vC1) / Lc
///   d vC1/dt = (iLc - g_sw vC1 - iL0) / C1
///   d iL0/dt = (vC1 - vC0 - R iL0) / L0
///   d vC0/dt = iL0 / C0
void system_matrices(const ClassETransientParams& p, double g_sw,
                     std::array<double, kStates * kStates>& a, State& c) {
  a.fill(0.0);
  c.fill(0.0);
  a[0 * kStates + 1] = -1.0 / p.lc;
  c[0] = p.vdd / p.lc;
  a[1 * kStates + 0] = 1.0 / p.c1;
  a[1 * kStates + 1] = -g_sw / p.c1;
  a[1 * kStates + 2] = -1.0 / p.c1;
  a[2 * kStates + 1] = 1.0 / p.l0;
  a[2 * kStates + 2] = -p.r_load / p.l0;
  a[2 * kStates + 3] = -1.0 / p.l0;
  a[3 * kStates + 2] = 1.0 / p.c0;
}

PhaseStep make_phase_step(const ClassETransientParams& p, double g_sw,
                          double h) {
  std::array<double, kStates * kStates> a{};
  State c{};
  system_matrices(p, g_sw, a, c);

  // lhs = I - h/2 A, rhs_m = I + h/2 A, rhs_k = h c.
  std::vector<double> lhs(kStates * kStates);
  std::array<double, kStates * kStates> rhs_m{};
  for (std::size_t i = 0; i < kStates; ++i) {
    for (std::size_t j = 0; j < kStates; ++j) {
      const double eye = (i == j) ? 1.0 : 0.0;
      lhs[i * kStates + j] = eye - 0.5 * h * a[i * kStates + j];
      rhs_m[i * kStates + j] = eye + 0.5 * h * a[i * kStates + j];
    }
  }
  linalg::LuReal lu(std::move(lhs), kStates);

  PhaseStep step;
  // Columns of M = lhs^{-1} rhs_m.
  for (std::size_t col = 0; col < kStates; ++col) {
    std::vector<double> rhs(kStates);
    for (std::size_t r = 0; r < kStates; ++r) rhs[r] = rhs_m[r * kStates + col];
    const auto solved = lu.solve(rhs);
    for (std::size_t r = 0; r < kStates; ++r) {
      step.m[r * kStates + col] = solved[r];
    }
  }
  // k = lhs^{-1} (h c).
  std::vector<double> hc(kStates);
  for (std::size_t r = 0; r < kStates; ++r) hc[r] = h * c[r];
  const auto solved = lu.solve(hc);
  for (std::size_t r = 0; r < kStates; ++r) step.k[r] = solved[r];
  return step;
}

double state_distance(const State& a, const State& b) {
  double acc = 0.0;
  for (std::size_t i = 0; i < kStates; ++i) {
    const double d = a[i] - b[i];
    acc += d * d;
  }
  return std::sqrt(acc);
}

double state_norm(const State& a) {
  double acc = 0.0;
  for (double v : a) acc += v * v;
  return std::sqrt(acc);
}

}  // namespace

ClassETransientResult simulate_classe_transient(
    const ClassETransientParams& p) {
  EASYBO_REQUIRE(p.vdd > 0.0 && p.ron > 0.0, "vdd and ron must be positive");
  EASYBO_REQUIRE(p.lc > 0.0 && p.c1 > 0.0 && p.l0 > 0.0 && p.c0 > 0.0,
                 "reactive elements must be positive");
  EASYBO_REQUIRE(p.r_load > 0.0 && p.freq > 0.0,
                 "load and frequency must be positive");
  EASYBO_REQUIRE(p.duty > 0.0 && p.duty < 1.0, "duty must be in (0,1)");
  EASYBO_REQUIRE(p.steps_per_cycle >= 16, "need at least 16 steps/cycle");
  EASYBO_REQUIRE(p.max_cycles >= 2, "need at least two cycles");

  const double period = 1.0 / p.freq;
  const double h = period / static_cast<double>(p.steps_per_cycle);
  const auto on_steps = static_cast<std::size_t>(
      std::round(p.duty * static_cast<double>(p.steps_per_cycle)));
  EASYBO_REQUIRE(on_steps > 0 && on_steps < p.steps_per_cycle,
                 "duty too extreme for the step resolution");

  const PhaseStep on = make_phase_step(p, 1.0 / p.ron, h);
  const PhaseStep off = make_phase_step(p, 0.0, h);

  // Start from a DC-sensible state: choke carries the rough average
  // current, resonator at rest.
  State x{p.vdd / (p.r_load + p.ron), 0.0, 0.0, 0.0};

  ClassETransientResult result;
  for (std::size_t cycle = 0; cycle < p.max_cycles; ++cycle) {
    const State start = x;
    for (std::size_t s = 0; s < p.steps_per_cycle; ++s) {
      x = (s < on_steps) ? on.advance(x) : off.advance(x);
    }
    ++result.cycles_run;
    const double scale = std::max(state_norm(x), 1e-9);
    if (state_distance(x, start) / scale < p.ss_tol) {
      result.converged = true;
      break;
    }
  }

  // Measurement cycle (trapezoidal averaging of instantaneous powers).
  double pout_acc = 0.0;
  double idc_acc = 0.0;
  double v_peak = 0.0;
  State measured = x;
  for (std::size_t s = 0; s < p.steps_per_cycle; ++s) {
    pout_acc += measured[2] * measured[2] * p.r_load;
    idc_acc += measured[0];
    v_peak = std::max(v_peak, measured[1]);
    measured = (s < on_steps) ? on.advance(measured) : off.advance(measured);
  }
  // ZVS check: the switch turns ON at the start of the next cycle, i.e.
  // right after the measurement loop; the drain voltage there should be
  // ~0 for a properly tuned class-E stage.
  result.v_switch_at_on = std::abs(measured[1]);

  const auto n = static_cast<double>(p.steps_per_cycle);
  result.p_out = pout_acc / n;
  result.p_dc = p.vdd * idc_acc / n;
  result.v_switch_peak = v_peak;
  result.drain_eff =
      result.p_dc > 1e-12 ? result.p_out / result.p_dc : 0.0;
  return result;
}

}  // namespace easybo::circuit
