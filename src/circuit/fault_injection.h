#pragma once
/// \file fault_injection.h
/// \brief Deterministic fault injection for the evaluation pipeline.
///
/// Wraps any objective so that every Nth call misbehaves in a chosen way —
/// throws (a crashed simulator), returns NaN (a non-physical result for an
/// unstable sizing), or hangs/slows down (a straggling simulation). The
/// schedule is counter-based, not random: "every 7th call throws" gives
/// tests and experiment recipes exact expected failure counts, independent
/// of seeds and of which worker happens to run the call. Used by the
/// fault-tolerance test suite, bench/fault_policies and the
/// --inject-*-every CLI flags (EXPERIMENTS.md "fault injection" recipe;
/// docs/failure-model.md for how the supervisor reacts).

#include <cstddef>
#include <memory>

#include "opt/objective.h"

namespace easybo::circuit {

using opt::Objective;
using opt::Vec;

/// Which calls misbehave. 0 disables a channel; the call counter is
/// 1-based, so throw_every = 3 faults calls 3, 6, 9, ... When several
/// channels hit the same call, precedence is throw > nan > hang.
struct FaultPlan {
  std::size_t throw_every = 0;  ///< throw std::runtime_error
  std::size_t nan_every = 0;    ///< return quiet NaN
  std::size_t hang_every = 0;   ///< sleep hang_seconds before returning
  double hang_seconds = 0.05;   ///< wall sleep of a "hang" (keep small)
  /// sim-time channel (wrap_sim_time, independent counter): every Nth
  /// simulation takes slow_factor times its nominal virtual duration —
  /// the virtual-time analogue of a straggler/hang.
  std::size_t slow_every = 0;
  double slow_factor = 100.0;
  /// Pacing, not a fault: EVERY objective call wall-sleeps this long
  /// before evaluating. Gives an otherwise-instant benchmark a real wall
  /// footprint so an external kill (the CI kill-and-resume smoke test, a
  /// human's Ctrl-C) reliably lands mid-run. Does not count as a fault.
  double sleep_seconds = 0.0;
};

/// Wraps objectives (and sim-time models) with the faults of one plan.
/// Thread-safe: the call counters are atomic and shared by every copy of a
/// wrapped objective, so "every Nth call" counts across a worker pool.
/// Copyable; copies share the counters of the injector they came from.
class FaultInjector {
 public:
  explicit FaultInjector(FaultPlan plan);

  /// The objective with faults injected per the plan. The wrapper holds
  /// shared state only — it outlives the injector safely.
  Objective wrap(Objective inner) const;

  /// A sim-time model with the slowdown channel injected (own counter, so
  /// virtual-duration faults do not consume objective-fault slots).
  std::function<double(const Vec&)> wrap_sim_time(
      std::function<double(const Vec&)> inner) const;

  /// Objective calls made so far (across all copies of wrapped objectives,
  /// retries included — each retry is a fresh call).
  std::size_t calls() const;

  /// Objective faults injected so far (throw + nan + hang channels).
  std::size_t faults_injected() const;

 private:
  struct State;
  FaultPlan plan_;
  std::shared_ptr<State> state_;
};

}  // namespace easybo::circuit
