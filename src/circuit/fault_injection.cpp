#include "circuit/fault_injection.h"

#include <atomic>
#include <chrono>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>

namespace easybo::circuit {

struct FaultInjector::State {
  std::atomic<std::size_t> calls{0};
  std::atomic<std::size_t> faults{0};
  std::atomic<std::size_t> sim_time_calls{0};
};

FaultInjector::FaultInjector(FaultPlan plan)
    : plan_(plan), state_(std::make_shared<State>()) {}

Objective FaultInjector::wrap(Objective inner) const {
  const FaultPlan plan = plan_;
  auto state = state_;
  return [plan, state, inner = std::move(inner)](const Vec& x) -> double {
    const std::size_t n = state->calls.fetch_add(1) + 1;  // 1-based
    if (plan.sleep_seconds > 0.0) {
      std::this_thread::sleep_for(
          std::chrono::duration<double>(plan.sleep_seconds));
    }
    const auto hits = [n](std::size_t every) {
      return every > 0 && n % every == 0;
    };
    if (hits(plan.throw_every)) {
      state->faults.fetch_add(1);
      throw std::runtime_error("injected simulator crash (call " +
                               std::to_string(n) + ")");
    }
    if (hits(plan.nan_every)) {
      state->faults.fetch_add(1);
      return std::numeric_limits<double>::quiet_NaN();
    }
    if (hits(plan.hang_every)) {
      state->faults.fetch_add(1);
      std::this_thread::sleep_for(
          std::chrono::duration<double>(plan.hang_seconds));
    }
    return inner(x);
  };
}

std::function<double(const Vec&)> FaultInjector::wrap_sim_time(
    std::function<double(const Vec&)> inner) const {
  const FaultPlan plan = plan_;
  auto state = state_;
  return [plan, state, inner = std::move(inner)](const Vec& x) -> double {
    const std::size_t n = state->sim_time_calls.fetch_add(1) + 1;
    const double t = inner(x);
    if (plan.slow_every > 0 && n % plan.slow_every == 0) {
      return t * plan.slow_factor;
    }
    return t;
  };
}

std::size_t FaultInjector::calls() const { return state_->calls.load(); }

std::size_t FaultInjector::faults_injected() const {
  return state_->faults.load();
}

}  // namespace easybo::circuit
