#pragma once
/// \file benchmark.h
/// \brief Bundled sizing benchmarks: objective + box + simulation-time
/// model + the paper's experiment budgets, ready for the experiment
/// harness.

#include <cstddef>
#include <string>

#include "circuit/sim_time_model.h"
#include "opt/objective.h"

namespace easybo::circuit {

/// Everything the harness needs to run one of the paper's two circuits
/// (or any other black-box posed the same way).
struct SizingBenchmark {
  std::string name;
  opt::Bounds bounds;
  opt::Objective fom;        ///< maximize (paper Eq. 1)
  SimTimeModel sim_time;     ///< virtual seconds per evaluation

  // The paper's budgets for this circuit (Table I/II setup).
  std::size_t init_points = 20;   ///< random initial samples for BO
  std::size_t max_sims = 150;     ///< BO simulation budget (incl. init)
  std::size_t de_sims = 20000;    ///< DE evaluation budget
};

/// Op-amp benchmark (§IV-A): 10-D, FOM = 1.2 GAIN + 10 UGF + 1.6 PM.
/// Sim-time model calibrated to ~39 s mean with a modest (~12%) CV —
/// the paper reports 9-14% async savings on this circuit.
SizingBenchmark make_opamp_benchmark();

/// Class-E benchmark (§IV-B): 12-D, FOM = 3 PAE + Pout.
/// Sim-time model calibrated to ~53 s mean with a large (~45%) CV — the
/// paper reports 27-40% async savings and a 7.35x headline speed-up here.
SizingBenchmark make_classe_benchmark();

}  // namespace easybo::circuit
