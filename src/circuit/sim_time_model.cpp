#include "circuit/sim_time_model.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <numbers>

#include "common/error.h"
#include "common/rng.h"

namespace easybo::circuit {

namespace {

std::uint64_t hash_bits(const Vec& x, std::uint64_t salt) {
  std::uint64_t state = salt ^ 0x9E3779B97F4A7C15ull;
  for (double v : x) {
    std::uint64_t bits = 0;
    static_assert(sizeof(bits) == sizeof(v));
    std::memcpy(&bits, &v, sizeof(bits));
    state ^= bits;
    (void)splitmix64(state);
  }
  return splitmix64(state);
}

}  // namespace

double hash_normal(const Vec& x, std::uint64_t salt) {
  std::uint64_t s = hash_bits(x, salt);
  const double u1 =
      (static_cast<double>(splitmix64(s) >> 11) + 0.5) * 0x1.0p-53;
  const double u2 = static_cast<double>(splitmix64(s) >> 11) * 0x1.0p-53;
  return std::sqrt(-2.0 * std::log(u1)) *
         std::cos(2.0 * std::numbers::pi * u2);
}

SimTimeModel::SimTimeModel(double base_seconds, double coord_span,
                           double sigma, opt::Bounds bounds,
                           std::uint64_t salt)
    : base_(base_seconds),
      span_(coord_span),
      sigma_(sigma),
      bounds_(std::move(bounds)),
      salt_(salt) {
  EASYBO_REQUIRE(base_ > 0.0, "SimTimeModel: base time must be positive");
  EASYBO_REQUIRE(span_ >= 0.0 && span_ < 2.0,
                 "SimTimeModel: coordinate span out of range");
  EASYBO_REQUIRE(sigma_ >= 0.0, "SimTimeModel: sigma must be non-negative");
  bounds_.validate();

  // Fixed positive weights derived from the salt (so the systematic
  // dependence is reproducible but not axis-aligned-trivial).
  Rng rng(salt ^ 0xC0FFEEull);
  weights_.resize(bounds_.dim());
  double total = 0.0;
  for (auto& w : weights_) {
    w = 0.2 + rng.uniform();
    total += w;
  }
  for (auto& w : weights_) w /= total;
}

double SimTimeModel::operator()(const Vec& x) const {
  EASYBO_REQUIRE(x.size() == bounds_.dim(),
                 "SimTimeModel: design point dimension mismatch");
  double s = 0.0;
  for (std::size_t j = 0; j < x.size(); ++j) {
    const double u = (x[j] - bounds_.lower[j]) /
                     (bounds_.upper[j] - bounds_.lower[j]);
    s += weights_[j] * std::clamp(u, 0.0, 1.0);
  }
  const double systematic = (1.0 - 0.5 * span_) + span_ * s;
  const double jitter = std::exp(sigma_ * hash_normal(x, salt_));
  return base_ * systematic * jitter;
}

}  // namespace easybo::circuit
