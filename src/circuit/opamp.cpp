#include "circuit/opamp.h"

#include <algorithm>
#include <cmath>

#include "circuit/mosfet.h"
#include "common/error.h"
#include "spice/measure.h"
#include "spice/mna.h"

namespace easybo::circuit {

opt::Bounds opamp_bounds() {
  opt::Bounds b;
  //          w12   l12   w34   l34   w6    l6    itail  i2     cc      rz
  b.lower = {2.0, 0.18, 2.0, 0.18, 5.0, 0.18, 10e-6, 50e-6, 0.2e-12, 10.0};
  b.upper = {100.0, 2.0, 100.0, 2.0, 300.0, 2.0, 500e-6, 2e-3, 5e-12, 10e3};
  return b;
}

OpAmpPerformance evaluate_opamp(const Vec& x) {
  EASYBO_REQUIRE(x.size() == kOpAmpDim, "op-amp design point must be 10-D");
  const double w12 = x[0], l12 = x[1];
  const double w34 = x[2], l34 = x[3];
  const double w6 = x[4], l6 = x[5];
  const double itail = x[6], i2 = x[7];
  const double cc = x[8], rz = x[9];

  // DC operating point (square-law): each diff-pair/mirror device carries
  // half the tail current; the second stage carries i2.
  const MosSmallSignal m1 =
      mos_small_signal(MosType::Nmos, w12, l12, 0.5 * itail);
  const MosSmallSignal m4 =
      mos_small_signal(MosType::Pmos, w34, l34, 0.5 * itail);
  const MosSmallSignal m6 = mos_small_signal(MosType::Nmos, w6, l6, i2);
  // M7: PMOS current source loading the second stage. Sized for a fixed
  // 0.25 V overdrive at L = 0.5 um (derived, not a design variable).
  const MosProcess pp = MosProcess::pmos_180();
  const double w7 = std::max(2.0 * i2 * 0.5 / (pp.kp * 0.25 * 0.25), 1.0);
  const MosSmallSignal m7 = mos_small_signal(MosType::Pmos, w7, 0.5, i2);

  // Single-ended small-signal equivalent of the two-stage Miller op-amp.
  spice::Circuit ckt;
  const auto in = ckt.node("in");
  const auto a = ckt.node("stage1");   // first-stage output
  const auto z = ckt.node("zero");     // between Rz and Cc
  const auto out = ckt.node("out");

  ckt.add_voltage_source(in, spice::kGround, 1.0);

  // Stage 1: gm1 * vin pulled from node A (inverting), Ro1 = ro2 || ro4,
  // node capacitance from the mirror and the second-stage gate.
  ckt.add_vccs(a, spice::kGround, in, spice::kGround, m1.gm);
  ckt.add_resistor(a, spice::kGround, 1.0 / (m1.gds + m4.gds));
  ckt.add_capacitor(a, spice::kGround, m1.cdb + m4.cdb + m4.cgd + m6.cgs);

  // Compensation branch A -- Rz -- Cc -- OUT.
  ckt.add_resistor(a, z, std::max(rz, 1e-3));
  ckt.add_capacitor(z, out, cc);

  // Stage 2: gm6 * vA pulled from OUT (inverting), Ro2 = ro6 || ro7,
  // explicit Cgd6 feedforward and the external load.
  ckt.add_vccs(out, spice::kGround, a, spice::kGround, m6.gm);
  ckt.add_resistor(out, spice::kGround, 1.0 / (m6.gds + m7.gds));
  ckt.add_capacitor(a, out, m6.cgd);
  ckt.add_capacitor(out, spice::kGround,
                    kOpAmpLoadCap + m6.cdb + m7.cdb + m7.cgd);

  const auto freqs = spice::log_frequency_grid(10.0, 100e9, 12);
  const auto sweep = spice::sweep_ac(ckt, freqs, out);
  const auto metrics = spice::measure_open_loop(sweep);

  OpAmpPerformance perf;
  perf.gain_db = metrics.dc_gain_db;
  perf.stable = metrics.has_ugf;
  if (metrics.has_ugf) {
    perf.ugf_hz = metrics.ugf_hz;
    perf.pm_deg = metrics.phase_margin_deg;
    // Eq. 10: 1.2*GAIN(dB) + 10*UGF(100 MHz units) + 1.6*PM(deg). The
    // paper does not state its metric units; these make the three terms
    // genuinely compete. PM credit saturates at 90 deg — phase margin
    // beyond that has no design value, and without the cap the optimizer
    // degenerately farms phase lead from the nulling-resistor zero instead
    // of trading gain against bandwidth against stability.
    perf.fom = 1.2 * perf.gain_db + 10.0 * (perf.ugf_hz / 1e8) +
               1.6 * std::min(perf.pm_deg, 90.0);
  } else {
    // No unity-gain crossing in-band: hopeless design; strongly negative
    // but finite and still ordered by gain so the surrogate gets a signal.
    perf.fom = 1.2 * perf.gain_db - 500.0;
  }
  return perf;
}

double opamp_fom(const Vec& x) { return evaluate_opamp(x).fom; }

}  // namespace easybo::circuit
