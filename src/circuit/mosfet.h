#pragma once
/// \file mosfet.h
/// \brief Square-law MOSFET model with 180 nm-flavored parameters.
///
/// The op-amp benchmark linearizes its transistors around a DC operating
/// point; this model supplies the small-signal parameters (gm, gds/ro and
/// the device capacitances) from W, L and the bias drain current, using the
/// long-channel square-law equations with a 1/L channel-length-modulation
/// term. It replaces the BSIM models an HSPICE PDK would provide — accurate
/// enough to create the gain/bandwidth/stability couplings the optimizer
/// has to navigate, which is the property the reproduction needs.

#include <cstddef>

namespace easybo::circuit {

/// Device polarity.
enum class MosType { Nmos, Pmos };

/// Process constants (per polarity). Values are representative of a generic
/// 0.18 um CMOS node.
struct MosProcess {
  double kp;        ///< transconductance parameter mu*Cox [A/V^2]
  double vth;       ///< threshold voltage magnitude [V]
  double lambda0;   ///< channel-length modulation coefficient [um/V]
  double cox;       ///< gate oxide capacitance [F/um^2]
  double cov;       ///< overlap capacitance per width [F/um]
  double cj;        ///< junction capacitance per width [F/um]

  static MosProcess nmos_180();
  static MosProcess pmos_180();
};

/// Small-signal parameters at a DC operating point.
struct MosSmallSignal {
  double gm = 0.0;    ///< transconductance [S]
  double gds = 0.0;   ///< output conductance [S]
  double ro = 0.0;    ///< output resistance [ohm]
  double vov = 0.0;   ///< overdrive voltage [V]
  double cgs = 0.0;   ///< gate-source capacitance [F]
  double cgd = 0.0;   ///< gate-drain (overlap) capacitance [F]
  double cdb = 0.0;   ///< drain-bulk junction capacitance [F]
};

/// Evaluates the square-law small-signal model in saturation.
///
/// \param type  device polarity (selects the process constants)
/// \param w_um  channel width in micrometers, > 0
/// \param l_um  channel length in micrometers, > 0
/// \param id    DC drain current magnitude in amps, > 0
///
/// gm  = sqrt(2 kp (W/L) Id)
/// gds = (lambda0 / L) * Id        (stronger modulation for short channels)
/// Cgs = (2/3) W L Cox + W Cov,  Cgd = W Cov,  Cdb = W Cj
MosSmallSignal mos_small_signal(MosType type, double w_um, double l_um,
                                double id);

}  // namespace easybo::circuit
