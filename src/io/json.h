#pragma once
/// \file json.h
/// \brief Minimal JSON reader/writer helpers for the durability layer.
///
/// The observability exporters (src/obs) only ever *emit* JSON; the
/// checkpoint/resume subsystem (docs/checkpoint-format.md) must also read
/// its own journal and snapshot files back, so this module adds a small
/// recursive-descent parser with exactly the features those files use:
/// objects, arrays, strings with escapes, doubles, booleans and null. No
/// external dependency — the container images pin what is installed, and
/// a ~200-line parser is cheaper to audit than a vendored library.
///
/// Numbers are parsed with strtod, matching the %.17g round-trip
/// formatting used on the write side, so a double survives
/// write -> parse bit for bit. 64-bit integers that must not lose
/// precision (RNG words, config hashes) are stored as decimal *strings*
/// on the wire and converted with the u64 helpers below.

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace easybo::io {

/// One parsed JSON value. Object members keep file order.
class JsonValue {
 public:
  enum class Kind { Null, Bool, Number, String, Array, Object };

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::Null; }

  /// Typed accessors; each throws easybo::Error on a kind mismatch so a
  /// malformed checkpoint fails loudly instead of reading garbage.
  bool as_bool() const;
  double as_double() const;
  const std::string& as_string() const;
  const std::vector<JsonValue>& as_array() const;
  /// Object members in file order (strict readers enumerate these to
  /// reject unknown keys). Throws easybo::Error on a kind mismatch.
  const std::vector<std::pair<std::string, JsonValue>>& as_members() const;

  /// Object member lookup; nullptr when absent (for optional fields).
  const JsonValue* find(std::string_view key) const;
  /// Object member lookup that throws easybo::Error when absent.
  const JsonValue& at(std::string_view key) const;

  // Construction (used by the parser; tests build values directly too).
  static JsonValue make_null() { return JsonValue(Kind::Null); }
  static JsonValue make_bool(bool b);
  static JsonValue make_number(double d);
  static JsonValue make_string(std::string s);
  static JsonValue make_array(std::vector<JsonValue> items);
  static JsonValue make_object(
      std::vector<std::pair<std::string, JsonValue>> members);

 private:
  explicit JsonValue(Kind kind) : kind_(kind) {}

  Kind kind_ = Kind::Null;
  bool bool_ = false;
  double num_ = 0.0;
  std::string str_;
  std::vector<JsonValue> arr_;
  std::vector<std::pair<std::string, JsonValue>> obj_;
};

/// Parses one JSON document. Throws easybo::Error (with the byte offset)
/// on malformed input or trailing garbage.
JsonValue parse_json(std::string_view text);

// --- write-side helpers (shared formatting with easybo.metrics.v1) ------

/// Round-trip double formatting: up to 17 significant digits, trailing
/// noise trimmed (1.0 prints as "1"). Non-finite values print as "null"
/// (JSON has no NaN/Inf literal).
std::string json_number(double value);

/// Quoted, escaped JSON string literal.
std::string json_quote(std::string_view s);

/// 64-bit values cross the wire as decimal strings: JSON numbers are
/// doubles and lose integer precision above 2^53.
std::string json_u64(std::uint64_t value);
std::uint64_t parse_u64(const std::string& text);

}  // namespace easybo::io
