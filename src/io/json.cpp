#include "io/json.h"

#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "common/error.h"

namespace easybo::io {

bool JsonValue::as_bool() const {
  EASYBO_REQUIRE(kind_ == Kind::Bool, "json: expected a boolean");
  return bool_;
}

double JsonValue::as_double() const {
  EASYBO_REQUIRE(kind_ == Kind::Number, "json: expected a number");
  return num_;
}

const std::string& JsonValue::as_string() const {
  EASYBO_REQUIRE(kind_ == Kind::String, "json: expected a string");
  return str_;
}

const std::vector<JsonValue>& JsonValue::as_array() const {
  EASYBO_REQUIRE(kind_ == Kind::Array, "json: expected an array");
  return arr_;
}

const std::vector<std::pair<std::string, JsonValue>>& JsonValue::as_members()
    const {
  EASYBO_REQUIRE(kind_ == Kind::Object, "json: expected an object");
  return obj_;
}

const JsonValue* JsonValue::find(std::string_view key) const {
  EASYBO_REQUIRE(kind_ == Kind::Object, "json: expected an object");
  for (const auto& [k, v] : obj_) {
    if (k == key) return &v;
  }
  return nullptr;
}

const JsonValue& JsonValue::at(std::string_view key) const {
  const JsonValue* v = find(key);
  if (v == nullptr) {
    throw Error("json: missing required key \"" + std::string(key) + "\"");
  }
  return *v;
}

JsonValue JsonValue::make_bool(bool b) {
  JsonValue v(Kind::Bool);
  v.bool_ = b;
  return v;
}

JsonValue JsonValue::make_number(double d) {
  JsonValue v(Kind::Number);
  v.num_ = d;
  return v;
}

JsonValue JsonValue::make_string(std::string s) {
  JsonValue v(Kind::String);
  v.str_ = std::move(s);
  return v;
}

JsonValue JsonValue::make_array(std::vector<JsonValue> items) {
  JsonValue v(Kind::Array);
  v.arr_ = std::move(items);
  return v;
}

JsonValue JsonValue::make_object(
    std::vector<std::pair<std::string, JsonValue>> members) {
  JsonValue v(Kind::Object);
  v.obj_ = std::move(members);
  return v;
}

namespace {

/// Recursive-descent parser over a string_view with a cursor.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  JsonValue parse_document() {
    JsonValue v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing garbage after the document");
    return v;
  }

 private:
  [[noreturn]] void fail(const char* what) const {
    throw Error("json parse error at byte " + std::to_string(pos_) + ": " +
                what);
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail("unexpected character");
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  JsonValue parse_value() {
    skip_ws();
    const char c = peek();
    switch (c) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return JsonValue::make_string(parse_string());
      case 't':
        if (!consume_literal("true")) fail("bad literal");
        return JsonValue::make_bool(true);
      case 'f':
        if (!consume_literal("false")) fail("bad literal");
        return JsonValue::make_bool(false);
      case 'n':
        if (!consume_literal("null")) fail("bad literal");
        return JsonValue::make_null();
      default: return parse_number();
    }
  }

  JsonValue parse_object() {
    expect('{');
    std::vector<std::pair<std::string, JsonValue>> members;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return JsonValue::make_object(std::move(members));
    }
    for (;;) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      members.emplace_back(std::move(key), parse_value());
      skip_ws();
      const char c = peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == '}') {
        ++pos_;
        return JsonValue::make_object(std::move(members));
      }
      fail("expected ',' or '}' in object");
    }
  }

  JsonValue parse_array() {
    expect('[');
    std::vector<JsonValue> items;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return JsonValue::make_array(std::move(items));
    }
    for (;;) {
      items.push_back(parse_value());
      skip_ws();
      const char c = peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == ']') {
        ++pos_;
        return JsonValue::make_array(std::move(items));
      }
      fail("expected ',' or ']' in array");
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          // The write side never emits \u (it escapes controls with the
          // single-letter forms), but accept BMP escapes for robustness;
          // encode as UTF-8.
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          unsigned cp = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            cp <<= 4;
            if (h >= '0' && h <= '9') cp |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f')
              cp |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F')
              cp |= static_cast<unsigned>(h - 'A' + 10);
            else fail("bad \\u escape");
          }
          if (cp < 0x80) {
            out.push_back(static_cast<char>(cp));
          } else if (cp < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (cp >> 6)));
            out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (cp >> 12)));
            out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
          }
          break;
        }
        default: fail("unknown escape");
      }
    }
  }

  JsonValue parse_number() {
    const char* begin = text_.data() + pos_;
    char* end = nullptr;
    errno = 0;
    const double v = std::strtod(begin, &end);
    if (end == begin) fail("expected a value");
    // strtod accepts "nan"/"inf"; real JSON does not, and the write side
    // emits null for non-finite values, so reject them on read too.
    if (!std::isfinite(v) && errno != ERANGE) fail("non-finite number");
    pos_ += static_cast<std::size_t>(end - begin);
    return JsonValue::make_number(v);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

JsonValue parse_json(std::string_view text) {
  return Parser(text).parse_document();
}

std::string json_number(double value) {
  if (!std::isfinite(value)) return "null";
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", value);
  // Trim to the shortest representation that round-trips.
  for (int prec = 1; prec < 17; ++prec) {
    char probe[32];
    std::snprintf(probe, sizeof probe, "%.*g", prec, value);
    if (std::strtod(probe, nullptr) == value) return probe;
  }
  return buf;
}

std::string json_quote(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  out.push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
  return out;
}

std::string json_u64(std::uint64_t value) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "%llu",
                static_cast<unsigned long long>(value));
  return buf;
}

std::uint64_t parse_u64(const std::string& text) {
  EASYBO_REQUIRE(!text.empty(), "parse_u64: empty string");
  char* end = nullptr;
  errno = 0;
  const unsigned long long v = std::strtoull(text.c_str(), &end, 10);
  EASYBO_REQUIRE(end == text.c_str() + text.size() && errno == 0,
                 "parse_u64: not a decimal 64-bit integer");
  return static_cast<std::uint64_t>(v);
}

}  // namespace easybo::io
