#include "io/journal.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <array>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

#include "io/fs_fault.h"

namespace easybo::io {

namespace {

std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) ? (0xEDB88320u ^ (c >> 1)) : (c >> 1);
    }
    table[i] = c;
  }
  return table;
}

[[noreturn]] void io_fail(const std::string& what, const std::string& path) {
  throw CheckpointError(what + " " + path + ": " + std::strerror(errno));
}

/// Consults the fault seam (io/fs_fault.h) for \p op on \p path. Applies
/// a stall immediately; returns the (possibly faulting) action for the
/// call site to apply — short writes and torn renames need site-specific
/// handling, everything else is "set errno and io_fail".
FsFaultAction fault_gate(FsOp op, const std::string& path) {
  FsFaultAction action = fs_fault_check(op, path);
  if (action.stall_seconds > 0) {
    std::this_thread::sleep_for(
        std::chrono::duration<double>(action.stall_seconds));
  }
  return action;
}

/// The common case: fault means fail outright, nothing site-specific.
void fault_gate_simple(FsOp op, const std::string& path, const char* what) {
  const FsFaultAction action = fault_gate(op, path);
  if (action.err != 0) {
    errno = action.err;
    io_fail(std::string(what) + " (injected fault)", path);
  }
}

/// fsync the directory containing \p path so a rename into it is durable.
void fsync_parent_dir(const std::string& path) {
  const auto slash = path.find_last_of('/');
  const std::string dir = (slash == std::string::npos)
                              ? std::string(".")
                              : path.substr(0, slash + 1);
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) return;  // not fatal: the data file itself is synced
  ::fsync(fd);
  ::close(fd);
}

void fsync_file(std::FILE* file, const std::string& path) {
  if (std::fflush(file) != 0) io_fail("cannot flush", path);
  fault_gate_simple(FsOp::Fsync, path, "cannot fsync");
  if (::fsync(::fileno(file)) != 0) io_fail("cannot fsync", path);
}

}  // namespace

std::uint32_t crc32(std::string_view data) {
  static const std::array<std::uint32_t, 256> table = make_crc_table();
  std::uint32_t c = 0xFFFFFFFFu;
  for (const char ch : data) {
    c = table[(c ^ static_cast<unsigned char>(ch)) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

std::string frame_line(std::string_view payload) {
  char hex[16];
  std::snprintf(hex, sizeof hex, "%08x", crc32(payload));
  std::string line = hex;
  line.push_back(' ');
  line.append(payload);
  return line;
}

bool unframe_line(std::string_view line, std::string& payload_out) {
  if (line.size() < 10 || line[8] != ' ') return false;
  std::uint32_t want = 0;
  for (int i = 0; i < 8; ++i) {
    const char h = line[static_cast<std::size_t>(i)];
    want <<= 4;
    if (h >= '0' && h <= '9') want |= static_cast<std::uint32_t>(h - '0');
    else if (h >= 'a' && h <= 'f')
      want |= static_cast<std::uint32_t>(h - 'a' + 10);
    else return false;
  }
  const std::string_view payload = line.substr(9);
  if (crc32(payload) != want) return false;
  payload_out.assign(payload);
  return true;
}

JournalReadResult read_journal(const std::string& path) {
  const std::string content = read_file(path);
  JournalReadResult out;
  std::size_t pos = 0;
  std::size_t line_no = 0;
  while (pos < content.size()) {
    const std::size_t nl = content.find('\n', pos);
    const bool terminated = nl != std::string::npos;
    const std::string_view line(content.data() + pos,
                                (terminated ? nl : content.size()) - pos);
    std::string payload;
    const bool valid = terminated && unframe_line(line, payload);
    const std::size_t next = terminated ? nl + 1 : content.size();
    if (!valid) {
      if (next >= content.size()) {
        // Torn tail: the one place a crash mid-append can leave damage.
        out.torn_tail = true;
        return out;
      }
      throw CheckpointError(
          "journal corrupted: line " + std::to_string(line_no + 1) + " of " +
          path + " failed its checksum (interior damage, not a torn tail)");
    }
    out.payloads.push_back(std::move(payload));
    out.valid_bytes = next;
    pos = next;
    ++line_no;
  }
  return out;
}

JournalWriter::~JournalWriter() { close(); }

void JournalWriter::open(const std::string& path, long truncate_to) {
  close();
  if (truncate_to >= 0) {
    fault_gate_simple(FsOp::Truncate, path, "cannot truncate journal");
    // Truncating a journal that does not exist yet to zero is a fresh
    // start, not an error; the fopen("ab") below creates it.
    if (::truncate(path.c_str(), static_cast<off_t>(truncate_to)) != 0 &&
        !(errno == ENOENT && truncate_to == 0)) {
      io_fail("cannot truncate journal", path);
    }
  }
  fault_gate_simple(FsOp::Open, path, "cannot open journal");
  file_ = std::fopen(path.c_str(), "ab");
  if (file_ == nullptr) io_fail("cannot open journal", path);
  path_ = path;
}

void JournalWriter::append(std::string_view payload) {
  EASYBO_REQUIRE(file_ != nullptr, "JournalWriter::append before open");
  std::string line = frame_line(payload);
  line.push_back('\n');
  // A failed append must leave the journal EXACTLY as it was: an fsync
  // that reports ENOSPC may still have let the full line reach the file,
  // and a torn write leaves half of it — either way a later resume would
  // replay a mutation whose caller was told it failed. Every failure
  // path below truncates back to the pre-append length (prior appends
  // were flushed, so fstat sees the true end). Only a crash can leave a
  // torn tail now, which is exactly the case read_journal tolerates.
  struct stat pre {};
  const bool have_size = ::fstat(::fileno(file_), &pre) == 0;
  const auto rollback = [&] {
    const int saved = errno;
    // Flush (or at least drop into the kernel) anything still buffered
    // so a later fclose cannot resurrect bytes past the truncation.
    std::fflush(file_);
    std::clearerr(file_);
    if (have_size) {
      ::ftruncate(::fileno(file_), pre.st_size);
    }
    errno = saved;
  };
  const FsFaultAction fault = fault_gate(FsOp::Write, path_);
  if (fault.err != 0) {
    if (fault.short_write) {
      // Half the framed line reaches the file before the error surfaces
      // — what a dying disk does. The rollback below repairs it; the
      // injection proves the repair happens.
      std::fwrite(line.data(), 1, line.size() / 2, file_);
      std::fflush(file_);
    }
    errno = fault.err;
    rollback();
    io_fail("cannot append to journal (injected fault)", path_);
  }
  if (std::fwrite(line.data(), 1, line.size(), file_) != line.size()) {
    rollback();
    io_fail("cannot append to journal", path_);
  }
  try {
    fsync_file(file_, path_);
  } catch (...) {
    rollback();
    throw;
  }
}

void JournalWriter::close() {
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
  }
}

std::string read_file(const std::string& path) {
  fault_gate_simple(FsOp::Open, path, "cannot open");
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) io_fail("cannot open", path);
  std::string content;
  char buf[1 << 16];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof buf, file)) > 0) {
    content.append(buf, n);
  }
  const bool bad = std::ferror(file) != 0;
  std::fclose(file);
  if (bad) io_fail("cannot read", path);
  const FsFaultAction fault = fault_gate(FsOp::Read, path);
  if (fault.err != 0) {
    errno = fault.err;
    io_fail("cannot read (injected fault)", path);
  }
  return content;
}

bool file_exists(const std::string& path) {
  struct stat st{};
  return ::stat(path.c_str(), &st) == 0 && S_ISREG(st.st_mode);
}

void atomic_write_file(const std::string& path, std::string_view content) {
  const std::string tmp = path + ".tmp";
  fault_gate_simple(FsOp::Open, tmp, "cannot create");
  std::FILE* file = std::fopen(tmp.c_str(), "wb");
  if (file == nullptr) io_fail("cannot create", tmp);
  const FsFaultAction wfault = fault_gate(FsOp::Write, tmp);
  if (wfault.err != 0) {
    if (wfault.short_write) {
      std::fwrite(content.data(), 1, content.size() / 2, file);
    }
    std::fclose(file);
    errno = wfault.err;
    io_fail("cannot write (injected fault)", tmp);
  }
  const bool wrote =
      std::fwrite(content.data(), 1, content.size(), file) == content.size();
  if (!wrote) {
    std::fclose(file);
    io_fail("cannot write", tmp);
  }
  fsync_file(file, tmp);
  std::fclose(file);
  const FsFaultAction rfault = fault_gate(FsOp::Rename, path);
  if (rfault.err != 0) {
    if (rfault.torn_rename) {
      // A non-atomic filesystem replacing the destination with a prefix
      // of the new content — the half-written snapshot resume must never
      // accept. (POSIX rename cannot do this; the injection exists so the
      // refusal path is tested.)
      std::FILE* torn = std::fopen(path.c_str(), "wb");
      if (torn != nullptr) {
        std::fwrite(content.data(), 1, content.size() / 2, torn);
        std::fclose(torn);
      }
    }
    errno = rfault.err;
    io_fail("cannot rename into place (injected fault)", path);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    io_fail("cannot rename into place", path);
  }
  fsync_parent_dir(path);
}

bool try_rename_file(const std::string& from, const std::string& to) {
  const FsFaultAction fault = fault_gate(FsOp::Rename, to);
  if (fault.err != 0) {
    if (fault.torn_rename) {
      // Plain stdio on purpose: going back through read_file would tick
      // the fault counters a second time for one logical operation.
      std::FILE* src = std::fopen(from.c_str(), "rb");
      if (src != nullptr) {
        std::string content;
        char buf[1 << 12];
        std::size_t n = 0;
        while ((n = std::fread(buf, 1, sizeof buf, src)) > 0) {
          content.append(buf, n);
        }
        std::fclose(src);
        std::FILE* torn = std::fopen(to.c_str(), "wb");
        if (torn != nullptr) {
          std::fwrite(content.data(), 1, content.size() / 2, torn);
          std::fclose(torn);
        }
      }
    }
    errno = fault.err;
    io_fail("cannot rename (injected fault)", to);
  }
  if (std::rename(from.c_str(), to.c_str()) != 0) {
    if (errno == ENOENT) return false;
    io_fail("cannot rename " + from + " over", to);
  }
  fsync_parent_dir(to);
  return true;
}

}  // namespace easybo::io
