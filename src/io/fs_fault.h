#pragma once
/// \file fs_fault.h
/// \brief Deterministic fault injection for the storage layer.
///
/// The journal/snapshot primitives in io/journal.cpp consult this seam
/// before every storage operation they perform (open, read, write,
/// fsync, rename, truncate). With no injector installed — the default —
/// the check is one relaxed atomic load; with one installed, every Nth
/// eligible operation misbehaves in a chosen way: ENOSPC on fsync (a
/// full disk), EIO anywhere (a dying disk), a short write (half the
/// payload persisted, then failure — the on-disk signature of a torn
/// journal line), or a torn rename (the destination left as a truncated
/// prefix of the new content — a non-atomic filesystem replacing a
/// snapshot). Schedules are counter-based, not random, mirroring
/// circuit/fault_injection: "every 3rd fsync fails" gives tests exact
/// expected fault counts regardless of threads or timing.
///
/// Used by the storage-fault test matrix (tests/test_serve_faults.cpp),
/// the chaos smoke script (scripts/serve_chaos.sh via easybo_serve's
/// --inject-* flags), and the overlap tests that need a storage op to
/// dwell (the stall channel). See docs/failure-model.md § Storage
/// faults for how the session host reacts to each channel.

#include <atomic>
#include <cstddef>
#include <memory>
#include <string>

namespace easybo::io {

/// The storage operations the journal layer performs.
enum class FsOp { Open, Read, Write, Fsync, Rename, Truncate };

const char* to_string(FsOp op);

/// Which operations misbehave. 0 disables a channel. Each channel keeps
/// its own 1-based counter over the operations it is eligible for, so
/// enospc_every = 3 faults the 3rd, 6th, 9th... *fsync*, independent of
/// how many writes happened in between. When several channels hit the
/// same operation, precedence is torn-rename > short-write > enospc >
/// eio. The stall channel is pacing, not a fault: it sleeps, then lets
/// the operation proceed (and other channels still apply to it).
struct FsFaultPlan {
  std::size_t enospc_every = 0;       ///< Nth Fsync fails with ENOSPC
  std::size_t eio_every = 0;          ///< Nth op (any kind) fails with EIO
  std::size_t short_write_every = 0;  ///< Nth Write: half persisted, EIO
  std::size_t torn_rename_every = 0;  ///< Nth Rename: torn dest, then EIO
  std::size_t stall_every = 0;        ///< Nth op (any kind) sleeps first
  double stall_seconds = 0.2;         ///< dwell of a stalled operation
  /// Stop injecting error-channel faults after this many (stalls are not
  /// faults and are never capped). SIZE_MAX = unlimited. Lets a test arm
  /// "exactly the Nth operation" (every = N, max_faults = 1).
  std::size_t max_faults = static_cast<std::size_t>(-1);
  /// When nonempty, only operations whose path contains this substring
  /// are eligible (and counted) — targets one session's files.
  std::string path_contains;
};

/// What the storage layer should do for one operation.
struct FsFaultAction {
  int err = 0;               ///< 0: proceed; else fail with this errno
  bool short_write = false;  ///< persist only half the payload first
  bool torn_rename = false;  ///< leave dest a truncated prefix first
  double stall_seconds = 0;  ///< sleep this long before anything else
};

/// Deterministic every-Nth storage-fault scheduler. Thread-safe: the
/// per-channel counters are atomic, so "every Nth fsync" counts across
/// however many connection threads share the process.
class FsFaultInjector {
 public:
  explicit FsFaultInjector(FsFaultPlan plan);

  /// Consulted by the storage layer before performing \p op on \p path.
  FsFaultAction check(FsOp op, const std::string& path);

  std::size_t ops() const;     ///< eligible operations seen so far
  std::size_t faults() const;  ///< error-channel faults injected so far

  const FsFaultPlan& plan() const { return plan_; }

 private:
  FsFaultPlan plan_;
  std::atomic<std::size_t> ops_{0};
  std::atomic<std::size_t> faults_{0};
  std::atomic<std::size_t> fsyncs_{0};
  std::atomic<std::size_t> writes_{0};
  std::atomic<std::size_t> renames_{0};
};

/// Installs \p injector as the process-global storage-fault seam
/// (nullptr uninstalls). The injector must outlive its installation.
/// Not for production use — tests and the chaos harness only.
void install_fs_faults(FsFaultInjector* injector);
FsFaultInjector* installed_fs_faults();

/// Consulted by every fallible operation in io/journal.cpp. One relaxed
/// atomic load when no injector is installed.
FsFaultAction fs_fault_check(FsOp op, const std::string& path);

/// RAII installation for tests: installs on construction, uninstalls on
/// destruction (restoring whatever was installed before).
class ScopedFsFaults {
 public:
  explicit ScopedFsFaults(FsFaultPlan plan);
  ~ScopedFsFaults();
  ScopedFsFaults(const ScopedFsFaults&) = delete;
  ScopedFsFaults& operator=(const ScopedFsFaults&) = delete;

  FsFaultInjector& injector() { return injector_; }

 private:
  FsFaultInjector injector_;
  FsFaultInjector* previous_;
};

}  // namespace easybo::io
