#pragma once
/// \file journal.h
/// \brief Durable, checksummed line storage for crash-safe runs.
///
/// Two primitives back the checkpoint/resume subsystem
/// (docs/checkpoint-format.md):
///
///  - an append-only JSONL *journal*: one fsync'd line per record, each
///    framed as "CRC32HEX payload\n" so that torn writes (a SIGKILL mid
///    line) are detected. The reader tolerates exactly one torn line at
///    the *tail* — that is the only place a crash can tear — and reports
///    how many bytes to truncate before appending resumes. A corrupt
///    *interior* line means the file was damaged after the fact and is a
///    hard error (CheckpointError).
///
///  - an *atomic snapshot*: write-tmp + fsync + rename(2) + directory
///    fsync, so the snapshot file is always either the old complete
///    version or the new complete version, never a mixture.
///
/// This layer knows nothing about BO; the record schemas live in
/// src/bo/checkpoint.h.

#include <cstdint>
#include <cstdio>
#include <string>
#include <string_view>
#include <vector>

#include "common/error.h"

namespace easybo::io {

/// A damaged or mismatched checkpoint/journal file. Distinct from plain
/// easybo::Error so front ends can map corruption to its own exit code.
class CheckpointError : public Error {
 public:
  using Error::Error;
};

/// CRC-32 (IEEE 802.3, polynomial 0xEDB88320) of \p data.
std::uint32_t crc32(std::string_view data);

/// Frames \p payload as "xxxxxxxx payload" (8 lowercase hex CRC digits,
/// one space). The newline is added by the writer.
std::string frame_line(std::string_view payload);

/// Unframes one line (no trailing newline). Returns false when the frame
/// is malformed or the checksum does not match — the caller decides
/// whether that is a tolerable torn tail or a hard error.
bool unframe_line(std::string_view line, std::string& payload_out);

/// Result of reading a framed journal file.
struct JournalReadResult {
  std::vector<std::string> payloads;  ///< valid records, file order
  bool torn_tail = false;   ///< the final line was torn/unterminated
  std::size_t valid_bytes = 0;  ///< file prefix covering the valid records
};

/// Reads every framed line of \p path. A final line that is unterminated
/// or fails its checksum is dropped and reported via torn_tail (the
/// SIGKILL-mid-write case); a bad line anywhere *before* the last throws
/// CheckpointError naming the line. Throws CheckpointError when the file
/// cannot be opened.
JournalReadResult read_journal(const std::string& path);

/// Append-only writer over framed lines. Every append is flushed and
/// fsync'd before returning — a record handed to append() survives any
/// subsequent crash (that is the journal's whole contract).
class JournalWriter {
 public:
  JournalWriter() = default;
  ~JournalWriter();
  JournalWriter(const JournalWriter&) = delete;
  JournalWriter& operator=(const JournalWriter&) = delete;

  /// Opens \p path for appending. When \p truncate_to is nonnegative the
  /// file is first truncated to that many bytes — how resume drops a torn
  /// tail before writing new records after it. Creates the file when
  /// absent. Throws CheckpointError on I/O failure.
  void open(const std::string& path, long truncate_to = -1);

  /// Frames, writes, flushes and fsyncs one record line.
  void append(std::string_view payload);

  bool is_open() const { return file_ != nullptr; }
  const std::string& path() const { return path_; }

  void close();

 private:
  std::FILE* file_ = nullptr;
  std::string path_;
};

/// Reads a whole file into a string. Throws CheckpointError when the file
/// cannot be opened or read.
std::string read_file(const std::string& path);

/// True when \p path names an existing regular file.
bool file_exists(const std::string& path);

/// Atomically replaces \p path with \p content: writes "<path>.tmp",
/// fflush + fsync, rename over \p path, then fsyncs the directory so the
/// rename itself is durable. Throws CheckpointError on I/O failure.
void atomic_write_file(const std::string& path, std::string_view content);

/// rename(2) \p from over \p to (+ directory fsync). Returns false when
/// \p from does not exist — the "nothing to rotate yet" case — and
/// throws CheckpointError on any other failure. Used by the session
/// host's snapshot rotation (docs/service-protocol.md § Durability).
bool try_rename_file(const std::string& from, const std::string& to);

}  // namespace easybo::io
