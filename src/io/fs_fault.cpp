#include "io/fs_fault.h"

#include <cerrno>

namespace easybo::io {

namespace {

std::atomic<FsFaultInjector*> g_injector{nullptr};

/// 1-based counter bump; true when this tick is a firing one.
bool fires(std::atomic<std::size_t>& counter, std::size_t every) {
  // The counter advances even while the channel is disabled, so enabling
  // a channel mid-run keeps the "every Nth since the beginning" reading.
  const std::size_t n = counter.fetch_add(1, std::memory_order_relaxed) + 1;
  return every != 0 && n % every == 0;
}

}  // namespace

const char* to_string(FsOp op) {
  switch (op) {
    case FsOp::Open: return "open";
    case FsOp::Read: return "read";
    case FsOp::Write: return "write";
    case FsOp::Fsync: return "fsync";
    case FsOp::Rename: return "rename";
    case FsOp::Truncate: return "truncate";
  }
  return "?";
}

FsFaultInjector::FsFaultInjector(FsFaultPlan plan) : plan_(std::move(plan)) {}

FsFaultAction FsFaultInjector::check(FsOp op, const std::string& path) {
  FsFaultAction action;
  if (!plan_.path_contains.empty() &&
      path.find(plan_.path_contains) == std::string::npos) {
    return action;
  }
  const std::size_t n = ops_.fetch_add(1, std::memory_order_relaxed) + 1;
  const bool any = plan_.eio_every != 0 && n % plan_.eio_every == 0;
  if (plan_.stall_every != 0 && n % plan_.stall_every == 0) {
    action.stall_seconds = plan_.stall_seconds;
  }

  // Channel precedence: torn-rename > short-write > enospc > eio.
  int err = 0;
  bool short_write = false;
  bool torn_rename = false;
  if (op == FsOp::Rename && fires(renames_, plan_.torn_rename_every)) {
    torn_rename = true;
    err = EIO;
  }
  if (op == FsOp::Write && fires(writes_, plan_.short_write_every) &&
      !torn_rename) {
    short_write = true;
    err = EIO;
  }
  if (op == FsOp::Fsync && fires(fsyncs_, plan_.enospc_every) && err == 0) {
    err = ENOSPC;
  }
  if (any && err == 0) err = EIO;

  if (err != 0) {
    // Respect the fault budget; a capped-out channel lets the op proceed.
    std::size_t injected = faults_.load(std::memory_order_relaxed);
    while (true) {
      if (injected >= plan_.max_faults) return action;
      if (faults_.compare_exchange_weak(injected, injected + 1,
                                        std::memory_order_relaxed)) {
        break;
      }
    }
    action.err = err;
    action.short_write = short_write;
    action.torn_rename = torn_rename;
  }
  return action;
}

std::size_t FsFaultInjector::ops() const {
  return ops_.load(std::memory_order_relaxed);
}

std::size_t FsFaultInjector::faults() const {
  return faults_.load(std::memory_order_relaxed);
}

void install_fs_faults(FsFaultInjector* injector) {
  g_injector.store(injector, std::memory_order_release);
}

FsFaultInjector* installed_fs_faults() {
  return g_injector.load(std::memory_order_acquire);
}

FsFaultAction fs_fault_check(FsOp op, const std::string& path) {
  FsFaultInjector* injector = g_injector.load(std::memory_order_acquire);
  if (injector == nullptr) return FsFaultAction{};
  return injector->check(op, path);
}

ScopedFsFaults::ScopedFsFaults(FsFaultPlan plan)
    : injector_(std::move(plan)), previous_(installed_fs_faults()) {
  install_fs_faults(&injector_);
}

ScopedFsFaults::~ScopedFsFaults() { install_fs_faults(previous_); }

}  // namespace easybo::io
