#include "obs/trace.h"

namespace easybo::obs {

const char* to_string(Phase phase) {
  switch (phase) {
    case Phase::InitDesign: return "init_design";
    case Phase::ModelFit: return "model_fit";
    case Phase::HyperRefit: return "hyper_refit";
    case Phase::AcqMaximize: return "acq_maximize";
    case Phase::ObjectiveEval: return "objective_eval";
    case Phase::ExecutorWait: return "executor_wait";
    case Phase::Checkpoint: return "checkpoint";
    case Phase::kCount: break;
  }
  return "unknown";
}

NullSink& NullSink::instance() {
  static NullSink sink;
  return sink;
}

}  // namespace easybo::obs
