#pragma once
/// \file trace.h
/// \brief The observability seam of the BO engine room: a TraceSink
/// interface with RAII ScopedTimer spans and named monotonic counters.
///
/// The async-BO frameworks this repo models itself on (Alvi et al. 2019;
/// Nomura 2020) justify their scheduling claims with per-phase and
/// per-worker statistics; this layer makes the same numbers readable off
/// any run: where the time goes (GP refits vs acquisition maximization vs
/// executor idle) and how often the hot paths fire (Cholesky full
/// refactors vs rank-1 extends, jitter escalations, dedup nudges).
///
/// Wiring: every instrumented component holds a non-owning `TraceSink*`
/// that defaults to nullptr — the null sink. With a null sink a span
/// reads no clock and a counter bump is one predicted branch, so
/// observability off is (measurably, see bench/micro_gp) free and the
/// instrumented code paths are behaviorally inert either way: no RNG
/// draws, no allocation, no control-flow change.
///
///   obs::RecordingSink rec;
///   engine.set_trace(&rec);
///   ... run ...
///   obs::MetricsReport report = rec.report();   // -> JSON / CSV

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <string_view>

namespace easybo::obs {

/// The phases a BO run cycles through. Used as fixed-size timer slots so
/// recording a span is an array update, not a map lookup.
enum class Phase : std::size_t {
  InitDesign,     ///< the whole random initial-design phase (incl. waits)
  ModelFit,       ///< z-scoring + covariance (re)factorization, no MLE
  HyperRefit,     ///< hyperparameter MLE (train_mle), incl. its inner fits
  AcqMaximize,    ///< acquisition maximization (screening + refinement)
  ObjectiveEval,  ///< objective run time, on the EXECUTOR clock (virtual
                  ///< seconds on VirtualExecutor, wall on ThreadExecutor)
  ExecutorWait,   ///< proposer blocked in wait_next() (wall clock)
  Checkpoint,     ///< durability I/O: journal fsyncs + snapshot writes
  kCount
};

inline constexpr std::size_t kNumPhases =
    static_cast<std::size_t>(Phase::kCount);

/// Stable snake_case name, also the key used in the JSON/CSV exports.
const char* to_string(Phase phase);

class RecordingSink;

/// Consumer of trace events. Implementations must tolerate concurrent
/// calls (executor workers may report while the proposer records spans).
class TraceSink {
 public:
  virtual ~TraceSink() = default;

  /// Adds one span of \p seconds to \p phase.
  virtual void add_time(Phase phase, double seconds) = 0;

  /// Increments the named monotonic counter. Names are dotted lowercase
  /// paths, e.g. "gp.chol_extend"; they become JSON keys verbatim.
  virtual void add_counter(std::string_view name, std::uint64_t delta) = 0;

  /// The RecordingSink at the end of this sink's forwarding chain, when
  /// there is one — BoEngine grafts executor/worker stats onto it at the
  /// end of a run. Plain sinks have none; RecordingSink returns itself;
  /// decorators that forward downstream (obs::StreamSink) chase their
  /// forward pointer.
  virtual RecordingSink* recording_sink() { return nullptr; }
};

/// Null-safe counter bump — the call every instrumented site uses, so a
/// null sink costs exactly one branch.
inline void count(TraceSink* sink, std::string_view name,
                  std::uint64_t delta = 1) {
  if (sink != nullptr) sink->add_counter(name, delta);
}

/// RAII span: measures wall time from construction to destruction (or an
/// early stop()) and reports it to the sink. Reads no clock at all when
/// the sink is null.
class ScopedTimer {
 public:
  ScopedTimer(TraceSink* sink, Phase phase) : sink_(sink), phase_(phase) {
    if (sink_ != nullptr) start_ = Clock::now();
  }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;
  ~ScopedTimer() { stop(); }

  /// Ends the span early. Idempotent; the destructor then does nothing.
  void stop() {
    if (sink_ == nullptr) return;
    const auto elapsed = Clock::now() - start_;
    sink_->add_time(phase_,
                    std::chrono::duration<double>(elapsed).count());
    sink_ = nullptr;
  }

 private:
  using Clock = std::chrono::steady_clock;
  TraceSink* sink_;
  Phase phase_;
  Clock::time_point start_;
};

/// A sink object that discards everything — for call sites that want a
/// non-null sink reference. Functionally identical to wiring nullptr.
class NullSink final : public TraceSink {
 public:
  void add_time(Phase, double) override {}
  void add_counter(std::string_view, std::uint64_t) override {}

  /// Shared instance (the sink is stateless).
  static NullSink& instance();
};

}  // namespace easybo::obs
