#include "obs/online_stats.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace easybo::obs {

void P2Quantile::add(double x) {
  // Warm-up: collect the first five samples verbatim, sorted.
  if (count_ < 5) {
    heights_[count_] = x;
    ++count_;
    std::sort(heights_.begin(), heights_.begin() +
                                    static_cast<std::ptrdiff_t>(count_));
    if (count_ == 5) {
      for (std::size_t i = 0; i < 5; ++i) {
        positions_[i] = static_cast<double>(i + 1);
      }
      desired_ = {1.0, 1.0 + 2.0 * q_, 1.0 + 4.0 * q_, 3.0 + 2.0 * q_, 5.0};
      increments_ = {0.0, q_ / 2.0, q_, (1.0 + q_) / 2.0, 1.0};
    }
    return;
  }

  // Find the cell k with heights_[k] <= x < heights_[k+1], updating the
  // extreme markers as needed.
  std::size_t k = 0;
  if (x < heights_[0]) {
    heights_[0] = x;
    k = 0;
  } else if (x >= heights_[4]) {
    heights_[4] = std::max(heights_[4], x);
    k = 3;
  } else {
    while (k < 3 && x >= heights_[k + 1]) ++k;
  }

  for (std::size_t i = k + 1; i < 5; ++i) positions_[i] += 1.0;
  for (std::size_t i = 0; i < 5; ++i) desired_[i] += increments_[i];
  ++count_;

  // Adjust the three interior markers toward their desired positions.
  for (std::size_t i = 1; i <= 3; ++i) {
    const double d = desired_[i] - positions_[i];
    const double below = positions_[i] - positions_[i - 1];
    const double above = positions_[i + 1] - positions_[i];
    if ((d >= 1.0 && above > 1.0) || (d <= -1.0 && below > 1.0)) {
      const double s = d >= 0.0 ? 1.0 : -1.0;
      // Piecewise-parabolic prediction of the marker height at its new
      // position.
      const double np = positions_[i] + s;
      const double hq =
          heights_[i] +
          s / (positions_[i + 1] - positions_[i - 1]) *
              ((below + s) * (heights_[i + 1] - heights_[i]) / above +
               (above - s) * (heights_[i] - heights_[i - 1]) / below);
      if (heights_[i - 1] < hq && hq < heights_[i + 1]) {
        heights_[i] = hq;
      } else {
        // Parabolic prediction left the bracket: fall back to linear.
        const std::size_t j = d >= 0.0 ? i + 1 : i - 1;
        heights_[i] += s * (heights_[j] - heights_[i]) /
                       (positions_[j] - positions_[i]);
      }
      positions_[i] = np;
    }
  }
}

double P2Quantile::value() const {
  if (count_ == 0) return 0.0;
  if (count_ < 5) {
    // Exact sample quantile over the sorted warm-up buffer (nearest-rank
    // with linear interpolation).
    const double pos = q_ * static_cast<double>(count_ - 1);
    const std::size_t lo = static_cast<std::size_t>(pos);
    const std::size_t hi = std::min<std::size_t>(lo + 1, count_ - 1);
    const double frac = pos - static_cast<double>(lo);
    return heights_[lo] + frac * (heights_[hi] - heights_[lo]);
  }
  return heights_[2];
}

std::string OnlineStat::json() const {
  auto num = [](double v) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return std::string(buf);
  };
  std::string s = "{\"count\":" + std::to_string(count_);
  s += ",\"total\":" + num(total_);
  s += ",\"last\":" + num(last_);
  s += ",\"cema\":" + num(cema());
  s += ",\"p50\":" + num(p50());
  s += ",\"p90\":" + num(p90());
  return s + "}";
}

}  // namespace easybo::obs
