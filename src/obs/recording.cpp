#include "obs/recording.h"

namespace easybo::obs {

void RecordingSink::add_time(Phase phase, double seconds) {
  const auto i = static_cast<std::size_t>(phase);
  std::lock_guard lock(mutex_);
  seconds_[i] += seconds;
  ++spans_[i];
}

void RecordingSink::add_counter(std::string_view name, std::uint64_t delta) {
  std::lock_guard lock(mutex_);
  // Heterogeneous lookup avoids a std::string allocation on the hot
  // repeat-bump path; the string is built once, on first use of a name.
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    counters_.emplace(std::string(name), delta);
  } else {
    it->second += delta;
  }
}

double RecordingSink::seconds(Phase phase) const {
  std::lock_guard lock(mutex_);
  return seconds_[static_cast<std::size_t>(phase)];
}

std::uint64_t RecordingSink::spans(Phase phase) const {
  std::lock_guard lock(mutex_);
  return spans_[static_cast<std::size_t>(phase)];
}

std::uint64_t RecordingSink::counter(std::string_view name) const {
  std::lock_guard lock(mutex_);
  const auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second;
}

MetricsReport RecordingSink::report() const {
  std::lock_guard lock(mutex_);
  MetricsReport r;
  r.phases.reserve(kNumPhases);
  for (std::size_t i = 0; i < kNumPhases; ++i) {
    PhaseStat p;
    p.name = to_string(static_cast<Phase>(i));
    p.seconds = seconds_[i];
    p.spans = spans_[i];
    r.phases.push_back(std::move(p));
  }
  r.counters.reserve(counters_.size());
  for (const auto& [name, value] : counters_) {
    r.counters.push_back({name, value});
  }
  return r;
}

void RecordingSink::reset() {
  std::lock_guard lock(mutex_);
  seconds_.fill(0.0);
  spans_.fill(0);
  counters_.clear();
}

}  // namespace easybo::obs
