#pragma once
/// \file metrics.h
/// \brief The machine-readable metrics report assembled from a run's
/// trace: per-phase timers, named counters, per-worker busy/idle — plus
/// JSON and CSV exporters so benches and the CLI can emit something a
/// plotting script (or the next perf PR) can consume without parsing
/// ASCII tables.
///
/// JSON schema ("easybo.metrics.v1", formally documented in
/// docs/metrics-schema.md — keep the two in sync):
///   {
///     "schema": "easybo.metrics.v1",
///     "makespan_seconds": <double>,
///     "phases":   { "<phase>": {"seconds": <double>, "spans": <uint>} },
///     "counters": { "<name>": <uint> },
///     "workers":  [ {"worker": <uint>, "busy_seconds": <double>,
///                    "idle_seconds": <double>} ],
///     "evals":    [ {"index": <uint>, "status": "<status>",
///                    "action": "<action>", "attempts": <uint>,
///                    "worker": <uint>, "start": <double>,
///                    "finish": <double>} ]
///   }
/// Phase keys are obs::to_string(Phase) values; every phase appears even
/// when it recorded nothing, so consumers need no existence checks.
/// "evals" is the per-evaluation outcome log of the fault-tolerant
/// pipeline (docs/failure-model.md); empty when the producing run had no
/// engine attached (e.g. pure micro benches).
///
/// CSV schema: header "section,name,value", one row per datum with
/// section in {phase_seconds, phase_spans, counter, worker_busy,
/// worker_idle, makespan_seconds}. The per-eval log is JSON-only.

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace easybo::obs {

/// Accumulated wall time of one phase.
struct PhaseStat {
  std::string name;
  double seconds = 0.0;
  std::uint64_t spans = 0;  ///< number of ScopedTimer spans recorded
};

/// One named monotonic counter.
struct CounterStat {
  std::string name;
  std::uint64_t value = 0;
};

/// Busy/idle split of one worker slot over the run.
struct WorkerStat {
  std::size_t worker = 0;
  double busy_seconds = 0.0;
  double idle_seconds = 0.0;  ///< makespan - busy
};

/// One supervised evaluation in completion order — the per-eval outcome
/// log of the fault-tolerant pipeline (sched::EvalSupervisor + the
/// engine's failure policy).
struct EvalLogEntry {
  std::size_t index = 0;       ///< completion order within the run
  std::string status;          ///< "ok"|"exception"|"timeout"|"non_finite"
  std::string action;          ///< "observed" | "discarded" | "penalized"
  std::uint32_t attempts = 1;  ///< supervised attempts (1 + retries)
  std::size_t worker = 0;      ///< slot; == worker count when abandoned
  double start = 0.0;          ///< executor seconds (first attempt)
  double finish = 0.0;         ///< executor seconds (last event)
};

/// Everything observed during one run (or the merge of several).
/// Default-constructed = "nothing collected": empty() is true.
struct MetricsReport {
  std::vector<PhaseStat> phases;      ///< in Phase declaration order
  std::vector<CounterStat> counters;  ///< sorted by name
  std::vector<WorkerStat> workers;    ///< by worker slot
  std::vector<EvalLogEntry> evals;    ///< per-eval log, completion order
  double makespan_seconds = 0.0;      ///< executor clock at run end

  bool empty() const {
    return phases.empty() && counters.empty() && workers.empty() &&
           evals.empty();
  }

  /// Value of the named counter, 0 when it never fired.
  std::uint64_t counter(std::string_view name) const;

  /// Accumulated seconds of the named phase, 0 when absent.
  double phase_seconds(std::string_view name) const;

  /// Element-wise sum: phases/counters merge by name, workers by slot,
  /// makespans add; per-eval logs concatenate (re-indexed to stay
  /// unique). Used to aggregate repeated bench runs.
  void merge(const MetricsReport& other);

  std::string to_json() const;
  std::string to_csv() const;
};

}  // namespace easybo::obs
