#include "obs/metrics.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace easybo::obs {

namespace {

/// Shortest round-trippable decimal representation (JSON has no inf/nan;
/// metrics values never are, they come from clocks and durations).
std::string json_number(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

/// Counter/phase names are generated in-repo (dotted lowercase paths),
/// but escape the JSON-special characters anyway so a hostile name can
/// not produce invalid output.
std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      out += buf;
    } else {
      out += c;
    }
  }
  return out;
}

}  // namespace

std::uint64_t MetricsReport::counter(std::string_view name) const {
  for (const auto& c : counters) {
    if (c.name == name) return c.value;
  }
  return 0;
}

double MetricsReport::phase_seconds(std::string_view name) const {
  for (const auto& p : phases) {
    if (p.name == name) return p.seconds;
  }
  return 0.0;
}

void MetricsReport::merge(const MetricsReport& other) {
  for (const auto& p : other.phases) {
    auto it = std::find_if(phases.begin(), phases.end(),
                           [&](const PhaseStat& q) { return q.name == p.name; });
    if (it == phases.end()) {
      phases.push_back(p);
    } else {
      it->seconds += p.seconds;
      it->spans += p.spans;
    }
  }
  for (const auto& c : other.counters) {
    auto it = std::find_if(
        counters.begin(), counters.end(),
        [&](const CounterStat& d) { return d.name == c.name; });
    if (it == counters.end()) {
      counters.push_back(c);
    } else {
      it->value += c.value;
    }
  }
  std::sort(counters.begin(), counters.end(),
            [](const CounterStat& a, const CounterStat& b) {
              return a.name < b.name;
            });
  for (const auto& w : other.workers) {
    auto it = std::find_if(
        workers.begin(), workers.end(),
        [&](const WorkerStat& v) { return v.worker == w.worker; });
    if (it == workers.end()) {
      workers.push_back(w);
    } else {
      it->busy_seconds += w.busy_seconds;
      it->idle_seconds += w.idle_seconds;
    }
  }
  std::sort(workers.begin(), workers.end(),
            [](const WorkerStat& a, const WorkerStat& b) {
              return a.worker < b.worker;
            });
  for (const auto& e : other.evals) {
    evals.push_back(e);
    evals.back().index = evals.size() - 1;
  }
  makespan_seconds += other.makespan_seconds;
}

std::string MetricsReport::to_json() const {
  std::ostringstream os;
  os << "{\"schema\":\"easybo.metrics.v1\"";
  os << ",\"makespan_seconds\":" << json_number(makespan_seconds);
  os << ",\"phases\":{";
  for (std::size_t i = 0; i < phases.size(); ++i) {
    if (i) os << ',';
    os << '"' << json_escape(phases[i].name)
       << "\":{\"seconds\":" << json_number(phases[i].seconds)
       << ",\"spans\":" << phases[i].spans << '}';
  }
  os << "},\"counters\":{";
  for (std::size_t i = 0; i < counters.size(); ++i) {
    if (i) os << ',';
    os << '"' << json_escape(counters[i].name) << "\":" << counters[i].value;
  }
  os << "},\"workers\":[";
  for (std::size_t i = 0; i < workers.size(); ++i) {
    if (i) os << ',';
    os << "{\"worker\":" << workers[i].worker
       << ",\"busy_seconds\":" << json_number(workers[i].busy_seconds)
       << ",\"idle_seconds\":" << json_number(workers[i].idle_seconds)
       << '}';
  }
  os << "],\"evals\":[";
  for (std::size_t i = 0; i < evals.size(); ++i) {
    if (i) os << ',';
    os << "{\"index\":" << evals[i].index
       << ",\"status\":\"" << json_escape(evals[i].status)
       << "\",\"action\":\"" << json_escape(evals[i].action)
       << "\",\"attempts\":" << evals[i].attempts
       << ",\"worker\":" << evals[i].worker
       << ",\"start\":" << json_number(evals[i].start)
       << ",\"finish\":" << json_number(evals[i].finish) << '}';
  }
  os << "]}";
  return os.str();
}

std::string MetricsReport::to_csv() const {
  std::ostringstream os;
  os << "section,name,value\n";
  for (const auto& p : phases) {
    os << "phase_seconds," << p.name << ',' << json_number(p.seconds)
       << '\n';
    os << "phase_spans," << p.name << ',' << p.spans << '\n';
  }
  for (const auto& c : counters) {
    os << "counter," << c.name << ',' << c.value << '\n';
  }
  for (const auto& w : workers) {
    os << "worker_busy," << w.worker << ','
       << json_number(w.busy_seconds) << '\n';
    os << "worker_idle," << w.worker << ','
       << json_number(w.idle_seconds) << '\n';
  }
  os << "makespan_seconds,," << json_number(makespan_seconds) << '\n';
  return os.str();
}

}  // namespace easybo::obs
