#include "obs/stream.h"

#include <algorithm>
#include <chrono>
#include <cstring>

#include "common/error.h"

namespace easybo::obs {

namespace {

std::string num(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

/// Frame timestamps: microsecond resolution is plenty for telemetry and
/// keeps the tail humanly readable.
std::string tstamp(double t) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6f", t);
  return buf;
}

std::string escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      out += buf;
    } else {
      out += c;
    }
  }
  return out;
}

}  // namespace

StreamSink::StreamSink(const std::string& path, StreamOptions options,
                       TraceSink* forward)
    : path_(path),
      options_(std::move(options)),
      forward_(forward),
      epoch_(std::chrono::steady_clock::now()) {
  if (options_.queue_capacity == 0) options_.queue_capacity = 1;
  ring_.resize(options_.queue_capacity);
  batch_.reserve(options_.queue_capacity);
  next_stats_frame_ = options_.stats_every;
  file_ = std::fopen(path_.c_str(), "w");
  if (file_ == nullptr) {
    throw Error("StreamSink: cannot open " + path_ + " for writing");
  }
  write_frame("{\"stream\":\"easybo.stream.v1\",\"type\":\"hello\","
              "\"source\":\"" +
              escape(options_.source) + "\"}");
  std::fflush(file_);
  if (!options_.manual_drain) {
    drainer_ = std::thread([this] { drain_loop(); });
  }
}

StreamSink::~StreamSink() { close(); }

void StreamSink::add_time(Phase phase, double seconds) {
  if (forward_ != nullptr) forward_->add_time(phase, seconds);
  Event e;
  e.t = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      epoch_)
            .count();
  e.value = seconds;
  e.phase = phase;
  e.is_span = true;
  enqueue(e);
}

void StreamSink::add_counter(std::string_view name, std::uint64_t delta) {
  if (forward_ != nullptr) forward_->add_counter(name, delta);
  Event e;
  e.t = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      epoch_)
            .count();
  e.value = static_cast<double>(delta);
  e.is_span = false;
  // Counter names are in-repo dotted paths well under the inline buffer;
  // a longer (hostile) name is truncated rather than allocated for.
  const std::size_t n = std::min(name.size(), sizeof(e.name) - 1);
  std::memcpy(e.name, name.data(), n);
  e.name_len = static_cast<std::uint8_t>(n);
  enqueue(e);
}

RecordingSink* StreamSink::recording_sink() {
  return forward_ != nullptr ? forward_->recording_sink() : nullptr;
}

void StreamSink::enqueue(const Event& e) {
  std::lock_guard<std::mutex> lock(queue_mutex_);
  if (!accepting_) return;  // late event after close(): discarded
  Event& slot = ring_[(head_ + size_) % ring_.size()];
  if (size_ == ring_.size()) {
    // Backpressure: drop the OLDEST queued event (its seq disappears
    // from the tail — consumers see the gap) and take its slot.
    head_ = (head_ + 1) % ring_.size();
    ++dropped_;
    Event& newest = ring_[(head_ + size_ - 1) % ring_.size()];
    newest = e;
    newest.seq = next_seq_++;
  } else {
    slot = e;
    slot.seq = next_seq_++;
    ++size_;
  }
  ++enqueued_;
}

std::size_t StreamSink::drain_batch() {
  std::uint64_t dropped_total = 0;
  std::uint64_t enqueued_total = 0;
  batch_.clear();
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    for (std::size_t i = 0; i < size_; ++i) {
      batch_.push_back(ring_[(head_ + i) % ring_.size()]);
    }
    size_ = 0;
    head_ = 0;
    dropped_total = dropped_;
    enqueued_total = enqueued_;
  }

  std::string line;
  for (const Event& e : batch_) {
    line.clear();
    if (e.is_span) {
      line = "{\"type\":\"span\",\"seq\":" + std::to_string(e.seq) +
             ",\"t\":" + tstamp(e.t) + ",\"phase\":\"" +
             to_string(e.phase) + "\",\"seconds\":" + num(e.value) + "}";
    } else {
      line = "{\"type\":\"counter\",\"seq\":" + std::to_string(e.seq) +
             ",\"t\":" + tstamp(e.t) + ",\"name\":\"" +
             escape(std::string_view(e.name, e.name_len)) +
             "\",\"delta\":" + std::to_string(
                                   static_cast<std::uint64_t>(e.value)) +
             "}";
    }
    write_frame(line);
  }

  bool emit_stats = false;
  std::uint64_t new_drops = 0;
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    for (const Event& e : batch_) {
      if (e.is_span) {
        if (e.phase == Phase::ObjectiveEval) {
          stats_.eval_latency.add(e.value);
        }
      } else {
        const std::string_view name(e.name, e.name_len);
        if (name == "acq.inner_evals") {
          stats_.acq_inner_evals.add(e.value);
        } else if (name == "eval.retries") {
          stats_.eval_retries.add(e.value);
        }
      }
    }
    stats_.emitted += batch_.size();
    stats_.enqueued = enqueued_total;
    stats_.dropped = dropped_total;
    if (dropped_total > reported_drops_) {
      new_drops = dropped_total - reported_drops_;
      reported_drops_ = dropped_total;
    }
    if (stats_.emitted >= next_stats_frame_ && options_.stats_every > 0) {
      emit_stats = true;
      next_stats_frame_ = stats_.emitted + options_.stats_every;
    }
  }

  if (new_drops > 0) {
    write_frame("{\"type\":\"drop\",\"dropped_total\":" +
                std::to_string(dropped_total) + "}");
    // Surface the loss on the post-hoc report too, so a MetricsReport of
    // a backpressured run says "the stream under-counts".
    count(forward_, "obs.stream_dropped", new_drops);
  }
  if (emit_stats) {
    write_frame("{\"type\":\"stats\",\"payload\":" + stats_json() + "}");
  }
  if (!batch_.empty() || new_drops > 0 || emit_stats) std::fflush(file_);
  return batch_.size();
}

void StreamSink::drain_loop() {
  const auto interval = std::chrono::duration<double>(
      options_.drain_interval_s > 0.0 ? options_.drain_interval_s : 0.05);
  std::unique_lock<std::mutex> lock(wake_mutex_);
  while (!shutdown_) {
    wake_.wait_for(lock, interval);
    lock.unlock();
    drain_batch();
    lock.lock();
  }
}

std::size_t StreamSink::drain_now() { return drain_batch(); }

void StreamSink::close() {
  {
    std::lock_guard<std::mutex> lock(wake_mutex_);
    if (closed_) return;
    closed_ = true;
    shutdown_ = true;
  }
  wake_.notify_all();
  if (drainer_.joinable()) drainer_.join();
  {
    // Stop accepting first so the final drain leaves exact accounting:
    // enqueued == emitted + dropped.
    std::lock_guard<std::mutex> lock(queue_mutex_);
    accepting_ = false;
  }
  drain_batch();  // whatever arrived after the last cycle
  const StreamStats totals = stats();
  write_frame("{\"type\":\"stats\",\"payload\":" + stats_json() + "}");
  write_frame("{\"type\":\"bye\",\"events\":" +
              std::to_string(totals.emitted) +
              ",\"dropped_total\":" + std::to_string(totals.dropped) + "}");
  std::fflush(file_);
  std::fclose(file_);
  file_ = nullptr;
}

void StreamSink::write_frame(const std::string& line) {
  // Best-effort tail: a full disk must degrade telemetry, never the run.
  if (file_ == nullptr) return;
  std::fwrite(line.data(), 1, line.size(), file_);
  std::fputc('\n', file_);
}

StreamStats StreamSink::stats() const {
  std::lock_guard<std::mutex> queue_lock(queue_mutex_);
  std::lock_guard<std::mutex> stats_lock(stats_mutex_);
  StreamStats s = stats_;
  // The queue-side totals are authoritative (the drainer's copies lag by
  // up to one batch).
  s.enqueued = enqueued_;
  s.dropped = dropped_;
  return s;
}

std::string StreamSink::stats_json() const {
  const StreamStats s = stats();
  std::string out = "{\"events\":" + std::to_string(s.emitted);
  out += ",\"dropped\":" + std::to_string(s.dropped);
  out += ",\"eval_latency\":" + s.eval_latency.json();
  out += ",\"acq_inner_evals\":" + s.acq_inner_evals.json();
  out += ",\"eval_retries\":" + s.eval_retries.json();
  return out + "}";
}

}  // namespace easybo::obs
