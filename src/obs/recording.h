#pragma once
/// \file recording.h
/// \brief The recording TraceSink: accumulates spans and counters in
/// memory and snapshots them into a MetricsReport.
///
/// Thread-safe: executor worker threads and the proposer thread may
/// record concurrently (the TSan CI job covers this). Recording is only
/// paid when somebody actually installed this sink — the default null
/// sink never reaches here.

#include <array>
#include <map>
#include <mutex>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace easybo::obs {

class RecordingSink final : public TraceSink {
 public:
  void add_time(Phase phase, double seconds) override;
  void add_counter(std::string_view name, std::uint64_t delta) override;
  RecordingSink* recording_sink() override { return this; }

  /// Accumulated seconds / span count of one phase so far.
  double seconds(Phase phase) const;
  std::uint64_t spans(Phase phase) const;

  /// Current value of a named counter; 0 when it never fired.
  std::uint64_t counter(std::string_view name) const;

  /// Snapshot: all phases (in declaration order, zero entries included)
  /// and all counters (sorted by name). Worker stats and makespan are the
  /// executor's to report; the engine grafts them on (see BoEngine).
  MetricsReport report() const;

  /// Forgets everything recorded so far.
  void reset();

 private:
  mutable std::mutex mutex_;
  std::array<double, kNumPhases> seconds_{};
  std::array<std::uint64_t, kNumPhases> spans_{};
  std::map<std::string, std::uint64_t, std::less<>> counters_;
};

}  // namespace easybo::obs
