#pragma once
/// \file online_stats.h
/// \brief Online (single-pass, O(1)-memory) statistics for live telemetry:
/// bias-corrected exponential moving averages (CEMA) and streaming
/// quantile estimates (the P² algorithm).
///
/// These back the StreamSink's live view of a run — eval latency,
/// acquisition inner-eval cost, retry counts — and the serve host's
/// STATUS health plane (docs/telemetry.md documents the exact formulas;
/// scripts/obs_tail.py re-implements them client-side so a tailed stream
/// reproduces the server's numbers).
///
/// Everything here is deterministic arithmetic over the values fed in: no
/// clocks, no RNG. Thread-compatibility is the caller's business (the
/// StreamSink updates these only on its drainer thread).

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>

namespace easybo::obs {

/// Corrected exponential moving average (the CaDiCaL/Adam-style
/// bias-corrected EMA). The plain EMA
///
///     b_n = (1 - alpha) * b_{n-1} + alpha * x_n,   b_0 = 0
///
/// is biased toward the zero initialization for the first ~1/alpha
/// samples. CEMA divides out exactly how much of the initial zero is
/// still present:
///
///     value_n = b_n / (1 - (1 - alpha)^n)
///
/// so value_1 == x_1 and the estimate is unbiased for a stationary input
/// at every n. The correction term is maintained incrementally (one
/// multiply per sample), never via pow().
class Cema {
 public:
  explicit Cema(double alpha = 0.05) : alpha_(alpha) {}

  void add(double x) {
    biased_ += alpha_ * (x - biased_);
    decay_ *= 1.0 - alpha_;  // (1 - alpha)^n, incrementally
    ++count_;
  }

  /// The bias-corrected average; 0 before the first sample.
  double value() const {
    const double correction = 1.0 - decay_;
    return correction > 0.0 ? biased_ / correction : 0.0;
  }

  double alpha() const { return alpha_; }
  std::uint64_t count() const { return count_; }

  void reset() {
    biased_ = 0.0;
    decay_ = 1.0;
    count_ = 0;
  }

 private:
  double alpha_;
  double biased_ = 0.0;
  double decay_ = 1.0;  ///< (1 - alpha)^count
  std::uint64_t count_ = 0;
};

/// Streaming quantile estimate: the P² algorithm (Jain & Chlamtac 1985).
/// Five markers track the running min, the q/2, q and (1+q)/2 quantiles
/// and the max; marker heights are adjusted toward their ideal positions
/// with a piecewise-parabolic interpolation. O(1) memory, no sample
/// retention. For the first five samples the estimate is the exact
/// sample quantile.
class P2Quantile {
 public:
  explicit P2Quantile(double q) : q_(q) {}

  void add(double x);

  /// Current estimate of the q-quantile; 0 before the first sample.
  double value() const;

  double quantile() const { return q_; }
  std::uint64_t count() const { return count_; }

 private:
  double q_;
  std::uint64_t count_ = 0;
  std::array<double, 5> heights_{};    // marker heights (sorted)
  std::array<double, 5> positions_{};  // actual marker positions
  std::array<double, 5> desired_{};    // desired marker positions
  std::array<double, 5> increments_{}; // desired-position increments
};

/// One tracked quantity's full online summary: sample count, running
/// total, last sample, CEMA and streaming p50/p90.
class OnlineStat {
 public:
  explicit OnlineStat(double alpha = 0.05)
      : cema_(alpha), p50_(0.5), p90_(0.9) {}

  void add(double x) {
    ++count_;
    total_ += x;
    last_ = x;
    cema_.add(x);
    p50_.add(x);
    p90_.add(x);
  }

  std::uint64_t count() const { return count_; }
  double total() const { return total_; }
  double last() const { return last_; }
  double cema() const { return cema_.value(); }
  double p50() const { return p50_.value(); }
  double p90() const { return p90_.value(); }

  /// One-line JSON object, e.g.
  /// {"count":12,"total":3.1,"last":0.2,"cema":0.25,"p50":0.24,"p90":0.4}
  std::string json() const;

 private:
  std::uint64_t count_ = 0;
  double total_ = 0.0;
  double last_ = 0.0;
  Cema cema_;
  P2Quantile p50_;
  P2Quantile p90_;
};

}  // namespace easybo::obs
