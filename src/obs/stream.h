#pragma once
/// \file stream.h
/// \brief StreamSink: live telemetry streaming off the TraceSink seam.
///
/// A bounded multi-producer queue that receives every span close and
/// counter delta, and a dedicated drainer thread that writes them as
/// JSONL frames ("easybo.stream.v1", docs/telemetry.md) to a file tail —
/// a plain file, a FIFO, or /dev/stdout; anything tail -f or
/// scripts/obs_tail.py can follow.
///
/// Hot-path contract: add_time()/add_counter() never block on I/O and
/// never allocate. Each call is one steady-clock read plus a short
/// critical section (fixed-size copy into a pre-allocated ring) on a
/// mutex the drainer holds only to swap batches out — never across a
/// write(). Under backpressure (the drainer cannot keep up) the OLDEST
/// queued event is dropped, the drop is counted exactly, and the stream
/// reports it via "drop" frames and the "obs.stream_dropped" counter on
/// the forwarded sink. Emission therefore never blocks the BO hot path,
/// and — like every TraceSink — the sink draws no RNG and changes no
/// control flow: a seeded run streams bit-identical proposals to a
/// null-sink run (tests/test_stream.cpp pins this).
///
/// Composition: a StreamSink can forward every event synchronously to a
/// downstream sink (typically a RecordingSink), so one instrumented run
/// can both stream live and assemble the post-hoc MetricsReport:
///
///   obs::RecordingSink rec;
///   obs::StreamSink stream("run.stream.jsonl", {}, &rec);
///   engine.set_trace(&stream);      // stream live + record post-hoc
///
/// On top of the queue the drainer maintains the online-statistics layer
/// (obs/online_stats.h): CEMA + streaming quantiles over `objective eval`
/// latency, `acq.inner_evals` deltas and `eval.retries` — snapshotted by
/// stats()/stats_json() for the serve STATUS health plane and emitted
/// periodically as "stats" frames.

#include <condition_variable>
#include <cstdint>
#include <cstdio>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "obs/online_stats.h"
#include "obs/trace.h"

namespace easybo::obs {

struct StreamOptions {
  /// Bounded queue capacity in events; the oldest event is dropped when
  /// a producer finds it full.
  std::size_t queue_capacity = 4096;
  /// Emit a "stats" frame after every this-many drained events.
  std::size_t stats_every = 256;
  /// Drainer poll period. The drainer also wakes immediately on close().
  double drain_interval_s = 0.05;
  /// "source" label in the hello frame — names this process/run when an
  /// aggregator tails several streams.
  std::string source = "easybo";
  /// Tests only: do not start the drainer thread; the caller pumps the
  /// queue explicitly with drain_now().
  bool manual_drain = false;
};

/// Snapshot of the sink's lifetime accounting and online statistics.
struct StreamStats {
  std::uint64_t enqueued = 0;  ///< events accepted into the queue
  std::uint64_t emitted = 0;   ///< events written to the tail
  std::uint64_t dropped = 0;   ///< drop-oldest casualties (exact)
  OnlineStat eval_latency;     ///< "objective eval" span seconds
  OnlineStat acq_inner_evals;  ///< "acq.inner_evals" counter deltas
  OnlineStat eval_retries;     ///< "eval.retries" counter deltas
};

class StreamSink final : public TraceSink {
 public:
  /// Opens \p path for writing (truncating) and emits the hello frame.
  /// Starts the drainer thread unless options.manual_drain. Throws
  /// easybo::Error when the file cannot be opened.
  explicit StreamSink(const std::string& path, StreamOptions options = {},
                      TraceSink* forward = nullptr);
  StreamSink(const StreamSink&) = delete;
  StreamSink& operator=(const StreamSink&) = delete;
  ~StreamSink() override;  // close()

  void add_time(Phase phase, double seconds) override;
  void add_counter(std::string_view name, std::uint64_t delta) override;
  RecordingSink* recording_sink() override;

  /// Drains whatever is queued, emits the final "stats" and "bye" frames
  /// and closes the file. Idempotent. Producers must have stopped (or be
  /// only the caller); late events after close are discarded.
  void close();

  /// Manual-drain mode: pump one drain cycle on the caller's thread.
  /// Returns the number of events written.
  std::size_t drain_now();

  StreamStats stats() const;

  /// One-line JSON of stats() — the object embedded in "stats" frames
  /// and in the serve host's bare-STATUS health JSON:
  ///   {"events":N,"dropped":N,"eval_latency":{...},
  ///    "acq_inner_evals":{...},"eval_retries":{...}}
  std::string stats_json() const;

  const std::string& path() const { return path_; }
  const StreamOptions& options() const { return options_; }

 private:
  struct Event {
    std::uint64_t seq = 0;
    double t = 0.0;       ///< seconds since sink creation (steady clock)
    double value = 0.0;   ///< span seconds, or counter delta
    Phase phase = Phase::InitDesign;
    bool is_span = false;
    std::uint8_t name_len = 0;  ///< counters: name length (may truncate)
    char name[47] = {};
  };

  void enqueue(const Event& e);
  std::size_t drain_batch();  ///< one swap-format-write cycle
  void drain_loop();
  void write_frame(const std::string& line);

  std::string path_;
  StreamOptions options_;
  TraceSink* forward_;
  std::FILE* file_ = nullptr;
  std::chrono::steady_clock::time_point epoch_;

  // Ring buffer (guarded by queue_mutex_).
  mutable std::mutex queue_mutex_;
  std::vector<Event> ring_;
  std::size_t head_ = 0;  ///< index of the oldest queued event
  std::size_t size_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t enqueued_ = 0;
  std::uint64_t dropped_ = 0;
  bool accepting_ = true;

  // Online statistics + emission accounting (guarded by stats_mutex_;
  // written only by the draining thread).
  mutable std::mutex stats_mutex_;
  StreamStats stats_;
  std::uint64_t reported_drops_ = 0;
  std::uint64_t next_stats_frame_ = 0;

  // Drainer lifecycle.
  std::mutex wake_mutex_;
  std::condition_variable wake_;
  bool shutdown_ = false;
  bool closed_ = false;
  std::thread drainer_;
  std::vector<Event> batch_;  ///< drain scratch (drainer thread only)
};

}  // namespace easybo::obs
