#include "serve/session_config.h"

#include <cmath>
#include <set>
#include <string>

#include "common/error.h"
#include "io/json.h"

namespace easybo::serve {

using linalg::Vec;

namespace {

using bo::AcqKind;
using bo::EvalFailurePolicy;
using bo::Mode;
using io::JsonValue;

std::size_t size_from(const JsonValue& v, const std::string& key) {
  const double d = v.as_double();
  if (!(d >= 0.0) || d != std::floor(d)) {
    throw Error("session config: \"" + key +
                "\" must be a non-negative integer");
  }
  return static_cast<std::size_t>(d);
}

Mode mode_from(const std::string& name) {
  if (name == "sequential") return Mode::Sequential;
  if (name == "sync") return Mode::SyncBatch;
  if (name == "async") return Mode::AsyncBatch;
  throw Error("session config: unknown mode \"" + name +
              "\" (expected sequential|sync|async)");
}

AcqKind acq_from(const std::string& name) {
  if (name == "EI") return AcqKind::Ei;
  if (name == "LCB") return AcqKind::Lcb;
  if (name == "EasyBO") return AcqKind::EasyBo;
  if (name == "pBO") return AcqKind::Pbo;
  if (name == "pHCBO") return AcqKind::Phcbo;
  if (name == "BUCB") return AcqKind::Bucb;
  if (name == "LP") return AcqKind::Lp;
  if (name == "TS") return AcqKind::Ts;
  if (name == "Hedge") return AcqKind::Hedge;
  throw Error("session config: unknown acq \"" + name +
              "\" (expected EI|LCB|EasyBO|pBO|pHCBO|BUCB|LP|TS|Hedge)");
}

EvalFailurePolicy failure_from(const std::string& name) {
  if (name == "discard") return EvalFailurePolicy::Discard;
  if (name == "penalize") return EvalFailurePolicy::Penalize;
  if (name == "abort") {
    throw Error(
        "session config: on_eval_failure \"abort\" is not available over "
        "the session protocol (failures are reported as replies, there is "
        "no abort channel); use discard or penalize");
  }
  throw Error("session config: unknown on_eval_failure \"" + name +
              "\" (expected discard|penalize)");
}

Vec vec_from(const JsonValue& v) {
  Vec out;
  out.reserve(v.as_array().size());
  for (const auto& item : v.as_array()) out.push_back(item.as_double());
  return out;
}

std::string vec_json(const Vec& v) {
  std::string s = "[";
  for (std::size_t i = 0; i < v.size(); ++i) {
    if (i != 0) s += ",";
    s += io::json_number(v[i]);
  }
  return s + "]";
}

// Every key parse_session_config understands; anything else is a typo
// that would silently change the proposal stream.
const std::set<std::string>& known_keys() {
  static const std::set<std::string> keys = {
      "dim",           "lower",
      "upper",         "seed",
      "mode",          "acq",
      "penalize",      "batch",
      "init_points",   "max_sims",
      "lambda",        "uniform_w",
      "lcb_kappa",     "ei_xi",
      "hc_d",          "hc_n",
      "kernel",        "refit_every",
      "gp_backend",    "rff_features",
      "rff_train_subset",
      "pin_hallucinated_mean",
      "checkpoint_every",
      "async_slot_rotation",
      "on_eval_failure",
      "eval_failure_quantile",
      "sobol_candidates",
      "random_candidates",
      "refine_evals",  "trainer_max_iters",
      "trainer_restarts",
      "adapt_refit_cadence",
      "adapt_refit_budget"};
  return keys;
}

}  // namespace

SessionSpec parse_session_config(const std::string& json_text) {
  const JsonValue j = io::parse_json(json_text);
  for (const auto& [key, value] : j.as_members()) {
    (void)value;
    if (known_keys().count(key) == 0) {
      throw Error("session config: unknown key \"" + key + "\"");
    }
  }

  SessionSpec spec;
  // Sessions default to Discard: the protocol has no abort channel.
  spec.config.on_eval_failure = EvalFailurePolicy::Discard;

  if (const JsonValue* lower = j.find("lower")) {
    spec.bounds.lower = vec_from(*lower);
    spec.bounds.upper = vec_from(j.at("upper"));
    if (const JsonValue* dim = j.find("dim")) {
      if (size_from(*dim, "dim") != spec.bounds.lower.size()) {
        throw Error(
            "session config: \"dim\" contradicts the length of "
            "\"lower\"/\"upper\"");
      }
    }
  } else {
    const std::size_t dim = size_from(j.at("dim"), "dim");
    if (dim == 0) throw Error("session config: \"dim\" must be positive");
    spec.bounds.lower.assign(dim, 0.0);
    spec.bounds.upper.assign(dim, 1.0);
  }

  if (const JsonValue* v = j.find("seed")) {
    // u64 seeds cross the wire as decimal strings (JSON numbers are
    // doubles); small seeds may come as plain numbers.
    spec.config.seed = v->kind() == JsonValue::Kind::String
                           ? io::parse_u64(v->as_string())
                           : static_cast<std::uint64_t>(
                                 size_from(*v, "seed"));
  }
  if (const JsonValue* v = j.find("mode")) {
    spec.config.mode = mode_from(v->as_string());
  }
  if (const JsonValue* v = j.find("acq")) {
    spec.config.acq = acq_from(v->as_string());
  }
  if (const JsonValue* v = j.find("penalize")) {
    spec.config.penalize = v->as_bool();
  }
  if (const JsonValue* v = j.find("batch")) {
    spec.config.batch = size_from(*v, "batch");
  }
  if (const JsonValue* v = j.find("init_points")) {
    spec.config.init_points = size_from(*v, "init_points");
  }
  if (const JsonValue* v = j.find("max_sims")) {
    spec.config.max_sims = size_from(*v, "max_sims");
  }
  if (const JsonValue* v = j.find("lambda")) {
    spec.config.lambda = v->as_double();
  }
  if (const JsonValue* v = j.find("uniform_w")) {
    spec.config.uniform_w = v->as_bool();
  }
  if (const JsonValue* v = j.find("lcb_kappa")) {
    spec.config.lcb_kappa = v->as_double();
  }
  if (const JsonValue* v = j.find("ei_xi")) {
    spec.config.ei_xi = v->as_double();
  }
  if (const JsonValue* v = j.find("hc_d")) {
    spec.config.hc_d = v->as_double();
  }
  if (const JsonValue* v = j.find("hc_n")) {
    spec.config.hc_n = v->as_double();
  }
  if (const JsonValue* v = j.find("kernel")) {
    spec.config.kernel = v->as_string();
  }
  if (const JsonValue* v = j.find("gp_backend")) {
    spec.config.gp_backend = v->as_string();
  }
  if (const JsonValue* v = j.find("rff_features")) {
    spec.config.rff_features = size_from(*v, "rff_features");
  }
  if (const JsonValue* v = j.find("rff_train_subset")) {
    spec.config.rff_train_subset = size_from(*v, "rff_train_subset");
  }
  if (const JsonValue* v = j.find("pin_hallucinated_mean")) {
    spec.config.pin_hallucinated_mean = v->as_bool();
  }
  if (const JsonValue* v = j.find("refit_every")) {
    spec.config.refit_every = size_from(*v, "refit_every");
  }
  if (const JsonValue* v = j.find("checkpoint_every")) {
    spec.config.checkpoint_every = size_from(*v, "checkpoint_every");
  }
  if (const JsonValue* v = j.find("async_slot_rotation")) {
    spec.config.async_slot_rotation = v->as_bool();
  }
  if (const JsonValue* v = j.find("on_eval_failure")) {
    spec.config.on_eval_failure = failure_from(v->as_string());
  }
  if (const JsonValue* v = j.find("eval_failure_quantile")) {
    spec.config.eval_failure_quantile = v->as_double();
  }
  if (const JsonValue* v = j.find("sobol_candidates")) {
    spec.config.acq_opt.sobol_candidates = size_from(*v, "sobol_candidates");
  }
  if (const JsonValue* v = j.find("random_candidates")) {
    spec.config.acq_opt.random_candidates =
        size_from(*v, "random_candidates");
  }
  if (const JsonValue* v = j.find("refine_evals")) {
    spec.config.acq_opt.refine_evals = size_from(*v, "refine_evals");
  }
  if (const JsonValue* v = j.find("trainer_max_iters")) {
    spec.config.trainer.max_iters =
        static_cast<int>(size_from(*v, "trainer_max_iters"));
  }
  if (const JsonValue* v = j.find("trainer_restarts")) {
    spec.config.trainer.restarts =
        static_cast<int>(size_from(*v, "trainer_restarts"));
  }
  if (const JsonValue* v = j.find("adapt_refit_cadence")) {
    spec.config.adapt_refit_cadence = v->as_bool();
  }
  if (const JsonValue* v = j.find("adapt_refit_budget")) {
    spec.config.adapt_refit_budget = v->as_double();
  }

  spec.config.validate();
  spec.bounds.validate();
  return spec;
}

std::string session_config_json(const bo::BoConfig& config,
                                const opt::Bounds& bounds) {
  if (config.on_eval_failure == EvalFailurePolicy::Abort) {
    throw Error(
        "session config: on_eval_failure \"abort\" is not available over "
        "the session protocol; use discard or penalize");
  }
  if (!config.checkpoint_path.empty()) {
    throw Error(
        "session config: checkpoint_path is owned by the session host and "
        "cannot cross the wire");
  }
  std::string s = "{";
  auto put = [&s](const std::string& key, const std::string& value) {
    if (s.size() > 1) s += ",";
    s += io::json_quote(key) + ":" + value;
  };
  put("dim", io::json_number(static_cast<double>(bounds.dim())));
  put("lower", vec_json(bounds.lower));
  put("upper", vec_json(bounds.upper));
  put("seed", io::json_quote(io::json_u64(config.seed)));
  put("mode", io::json_quote(to_string(config.mode)));
  put("acq", io::json_quote(to_string(config.acq)));
  put("penalize", config.penalize ? "true" : "false");
  put("batch", io::json_number(static_cast<double>(config.batch)));
  put("init_points",
      io::json_number(static_cast<double>(config.init_points)));
  put("max_sims", io::json_number(static_cast<double>(config.max_sims)));
  put("lambda", io::json_number(config.lambda));
  put("uniform_w", config.uniform_w ? "true" : "false");
  put("lcb_kappa", io::json_number(config.lcb_kappa));
  put("ei_xi", io::json_number(config.ei_xi));
  put("hc_d", io::json_number(config.hc_d));
  put("hc_n", io::json_number(config.hc_n));
  put("kernel", io::json_quote(config.kernel));
  put("gp_backend", io::json_quote(config.gp_backend));
  put("rff_features",
      io::json_number(static_cast<double>(config.rff_features)));
  put("rff_train_subset",
      io::json_number(static_cast<double>(config.rff_train_subset)));
  put("pin_hallucinated_mean",
      config.pin_hallucinated_mean ? "true" : "false");
  put("refit_every",
      io::json_number(static_cast<double>(config.refit_every)));
  put("checkpoint_every",
      io::json_number(static_cast<double>(config.checkpoint_every)));
  put("async_slot_rotation", config.async_slot_rotation ? "true" : "false");
  put("on_eval_failure", io::json_quote(to_string(config.on_eval_failure)));
  put("eval_failure_quantile",
      io::json_number(config.eval_failure_quantile));
  put("sobol_candidates",
      io::json_number(static_cast<double>(config.acq_opt.sobol_candidates)));
  put("random_candidates",
      io::json_number(
          static_cast<double>(config.acq_opt.random_candidates)));
  put("refine_evals",
      io::json_number(static_cast<double>(config.acq_opt.refine_evals)));
  put("trainer_max_iters",
      io::json_number(static_cast<double>(config.trainer.max_iters)));
  put("trainer_restarts",
      io::json_number(static_cast<double>(config.trainer.restarts)));
  put("adapt_refit_cadence", config.adapt_refit_cadence ? "true" : "false");
  put("adapt_refit_budget", io::json_number(config.adapt_refit_budget));
  return s + "}";
}

}  // namespace easybo::serve
