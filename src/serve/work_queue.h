#pragma once
/// \file work_queue.h
/// \brief Bounded worker pool for deadline-bounded request execution.
///
/// The serving problem this solves (docs/service-protocol.md
/// § Deadlines): with session commands executed directly on connection
/// threads, one slow SUGGEST (large n, exact GP, many restarts) occupies
/// its connection for the duration and — worse — holds the per-session
/// lock against eviction. The WorkQueue decouples the two: connection
/// threads parse/validate and submit() a closure; a fixed pool of
/// workers executes it (session lock acquisition included); the
/// submitter waits on the task with its own deadline and can walk away
/// (abandon()) while the worker keeps running to a safe checkpoint.
///
/// Boundedness, in order:
///  - submit() refuses (returns null) when `capacity` tasks are already
///    queued — the caller sheds with "ERR busy" instead of queueing
///    without bound;
///  - each executing closure receives how long it sat queued, so the
///    caller can shed stale work at dequeue (the queue-wait cap) before
///    spending model math on a request whose client has given up;
///  - an abandoned task that was still queued is discarded without
///    executing at all.
///
/// The queue is deliberately protocol-agnostic: it moves opaque
/// string-reply closures and never looks inside them. All serve
/// semantics (shedding replies, deadline classification, watchdog
/// quarantine) live in SessionHost, which is where they are tested.

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/stop_token.h"

namespace easybo::serve {

struct WorkQueueOptions {
  /// Worker threads executing tasks. Must be >= 1.
  std::size_t workers = 2;
  /// Tasks allowed to wait for a worker before submit() refuses.
  std::size_t capacity = 64;
};

class WorkQueue {
 public:
  /// What state an abandoned task was in (the submitter's deadline+grace
  /// classification depends on it — see SessionHost).
  enum class Abandon {
    Completed,  ///< finished in the race: take_reply() is valid
    Queued,     ///< never started; the worker will discard it unrun
    Running,    ///< a worker is still executing it (the watchdog case)
  };

  /// The task executed by a worker: returns the protocol reply line.
  /// Arguments: the request's cancellation token and the seconds the
  /// task spent queued before execution began.
  using Fn = std::function<std::string(const common::StopToken&, double)>;

  /// Shared between the submitting thread and the executing worker. All
  /// methods are thread-safe.
  class Task {
   public:
    /// Blocks until the reply is published or \p until passes. True when
    /// the reply is available (take_reply() is then valid).
    bool wait_until(std::chrono::steady_clock::time_point until);

    /// Blocks until the reply is published (no-deadline submitters).
    void wait();

    /// Moves the reply out; call only after wait()/wait_until() true.
    std::string take_reply();

    /// Declares the submitter gone and reports what state the task was
    /// in at that instant. After Running, the worker will invoke the
    /// submit()-time on_abandoned_done callback once the closure
    /// eventually returns; after Queued, the closure never runs at all.
    Abandon abandon();

   private:
    friend class WorkQueue;
    std::mutex m_;
    std::condition_variable cv_;
    bool done_ = false;
    bool started_ = false;
    bool abandoned_ = false;
    std::string reply_;
    Fn fn_;
    common::StopToken token_;
    std::chrono::steady_clock::time_point enqueued_;
    std::function<void()> on_abandoned_done_;
  };

  explicit WorkQueue(WorkQueueOptions opt);
  /// Stops accepting, drains whatever is queued (so no submitter can be
  /// left waiting forever), joins the workers.
  ~WorkQueue();

  WorkQueue(const WorkQueue&) = delete;
  WorkQueue& operator=(const WorkQueue&) = delete;

  /// Enqueues a task. Returns null when the admission queue is full (or
  /// the queue is shutting down) — the caller sheds, nothing was
  /// enqueued. \p on_abandoned_done runs on the worker thread after an
  /// abandoned-while-Running task's closure finally returns; SessionHost
  /// uses it to quarantine the session a runaway request was stuck on.
  std::shared_ptr<Task> submit(Fn fn, common::StopToken token,
                               std::function<void()> on_abandoned_done = {});

  /// Tasks currently waiting for a worker (excludes executing ones).
  std::size_t depth() const;
  std::size_t workers() const { return threads_.size(); }

 private:
  void worker_loop();

  WorkQueueOptions opt_;
  mutable std::mutex m_;
  std::condition_variable cv_;
  std::deque<std::shared_ptr<Task>> queue_;
  bool stopping_ = false;
  std::vector<std::thread> threads_;
};

}  // namespace easybo::serve
