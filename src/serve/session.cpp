#include "serve/session.h"

#include <cmath>
#include <limits>
#include <utility>

#include "common/error.h"
#include "io/json.h"

namespace easybo::serve {

using linalg::Vec;

namespace {

sched::EvalStatus failure_status_from(const std::string& name) {
  if (name == "exception") return sched::EvalStatus::Exception;
  if (name == "timeout") return sched::EvalStatus::Timeout;
  if (name == "non_finite") return sched::EvalStatus::NonFinite;
  throw Error("observe: unknown failure status \"" + name +
              "\" (expected exception|timeout|non_finite)");
}

sched::EvalStatus replay_status_from(const std::string& name,
                                     std::size_t record_index) {
  if (name == "ok") return sched::EvalStatus::Ok;
  if (name == "exception") return sched::EvalStatus::Exception;
  if (name == "timeout") return sched::EvalStatus::Timeout;
  if (name == "non_finite") return sched::EvalStatus::NonFinite;
  throw io::CheckpointError("journal corrupted: record " +
                            std::to_string(record_index) +
                            " carries unknown eval status \"" + name + "\"");
}

bool same_point(const Vec& a, const Vec& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i] != b[i]) return false;
  }
  return true;
}

enum class SnapLoad { Missing, Damaged, Ok };

/// Loads one snapshot generation. Missing and framing-level damage (torn
/// or unreadable — everything a crashed replace can leave behind) are
/// reported for the caller to fall back on; a frame whose checksum holds
/// but whose JSON does not is corruption no torn write produces, and that
/// parse error propagates as the hard refusal it deserves.
SnapLoad load_snapshot(const std::string& path, bo::BoCheckpoint& out) {
  if (!io::file_exists(path)) return SnapLoad::Missing;
  io::JournalReadResult sr;
  try {
    sr = io::read_journal(path);
  } catch (const io::CheckpointError&) {
    return SnapLoad::Damaged;
  }
  if (sr.payloads.size() != 1 || sr.torn_tail) return SnapLoad::Damaged;
  out = bo::BoCheckpoint::parse(sr.payloads.front());
  return SnapLoad::Ok;
}

}  // namespace

Session::Session(std::string name, SessionSpec spec)
    : name_(std::move(name)),
      core_(std::move(spec.config), std::move(spec.bounds)) {
  // The session's snapshot files reuse the engine's schema, which carries
  // the supervisor jitter stream. A hosted session never retries (the
  // client reports one terminal outcome per tag), so the stream stays at
  // the state the engine would have seeded it with.
  Rng sup(core_.config().seed ^ 0x5AFEB0FFu);
  sup_rng_ = sup.save();
}

std::unique_ptr<Session> Session::create(std::string name, SessionSpec spec,
                                         const std::string& checkpoint_base) {
  auto s = std::unique_ptr<Session>(
      new Session(std::move(name), std::move(spec)));
  s->core_.set_checkpoint_path(checkpoint_base);
  s->core_.start_fresh_journal();
  // Durable before the first reply: a host crash between NEW and the
  // first SUGGEST must still resume to a pristine session.
  s->snapshot();
  return s;
}

std::unique_ptr<Session> Session::resume(std::string name, SessionSpec spec,
                                         const std::string& checkpoint_base) {
  auto s = std::unique_ptr<Session>(
      new Session(std::move(name), std::move(spec)));
  bo::AskTellCore& core = s->core_;
  core.set_checkpoint_path(checkpoint_base);

  const std::string jpath = bo::journal_file(checkpoint_base);
  const std::string spath = bo::snapshot_file(checkpoint_base);
  if (!io::file_exists(jpath)) {
    throw io::CheckpointError("cannot resume: no journal at " + jpath);
  }
  const io::JournalReadResult jr = io::read_journal(jpath);
  if (jr.payloads.empty()) {
    // No intact header. Appends are sequential and a failed append rolls
    // the file back, so nothing can ever have been journaled — and the
    // first snapshot is written only after the header. If no snapshot
    // generation exists either, this is the wreckage of a crashed (or
    // storage-faulted) NEW: nothing was ever observable, so re-creating
    // fresh is exact. Any surviving snapshot alongside a headerless
    // journal is real corruption and keeps the hard refusal.
    bo::BoCheckpoint ignored;
    if (load_snapshot(spath, ignored) == SnapLoad::Missing &&
        load_snapshot(spath + ".old", ignored) == SnapLoad::Missing) {
      core.start_fresh_journal();
      s->snapshot();
      return s;
    }
    throw io::CheckpointError("cannot resume: journal at " + jpath +
                              " holds no intact header line");
  }
  const bo::JournalHeader header = bo::JournalHeader::parse(jr.payloads.front());
  if (header.config_hash != core.config_hash()) {
    throw io::CheckpointError(
        "checkpoint config mismatch: journal " + jpath +
        " was written with config fingerprint " +
        io::json_u64(header.config_hash) +
        " but this session is configured with fingerprint " +
        io::json_u64(core.config_hash()) +
        "; resuming would splice two different proposal streams");
  }
  std::vector<bo::JournalRecord> records;
  records.reserve(jr.payloads.size() - 1);
  for (std::size_t i = 1; i < jr.payloads.size(); ++i) {
    bo::JournalRecord rec = bo::JournalRecord::parse(jr.payloads[i]);
    if (rec.index != records.size()) {
      throw io::CheckpointError(
          "journal corrupted: line " + std::to_string(i + 1) + " of " +
          jpath + " carries record index " + std::to_string(rec.index) +
          " where " + std::to_string(records.size()) + " was expected");
    }
    records.push_back(std::move(rec));
  }

  // Sessions write a snapshot inside create(), so a resumable session
  // normally has one. A missing or torn "<base>.snapshot" is the
  // signature of a crash (or injected fault) mid-replace; the previous
  // generation "<base>.snapshot.old" plus the journal tail resumes to
  // the exact same state (see snapshot()), so a half-written snapshot is
  // never accepted and never fatal on its own. Only when neither
  // generation is usable does resume give up — and if the journal holds
  // no eval records, nothing beyond the pristine state was ever
  // observable (a crash inside create()), so the session is recreated
  // fresh rather than refused.
  const std::string old_path = spath + ".old";
  bo::BoCheckpoint snap;
  const SnapLoad primary = load_snapshot(spath, snap);
  bool from_fallback = false;
  if (primary != SnapLoad::Ok) {
    if (load_snapshot(old_path, snap) == SnapLoad::Ok) {
      from_fallback = true;
    } else if (records.empty()) {
      core.reopen_journal(jr.valid_bytes, 0, 0);
      // snapshot_valid_ is still false, so this first write does not
      // rotate whatever damaged file sits at spath into the fallback.
      s->snapshot();
      return s;
    } else {
      throw io::CheckpointError(
          "cannot resume session: snapshot " + spath + " is " +
          (primary == SnapLoad::Missing ? "missing" : "damaged") +
          " and no usable fallback snapshot exists at " + old_path);
    }
  }
  const std::string used = from_fallback ? old_path : spath;
  if (snap.config_hash != core.config_hash()) {
    throw io::CheckpointError(
        "checkpoint config mismatch: snapshot " + used +
        " was written with config fingerprint " +
        io::json_u64(snap.config_hash) +
        " but this session is configured with fingerprint " +
        io::json_u64(core.config_hash()));
  }
  if (snap.journal_count > records.size()) {
    throw io::CheckpointError(
        "snapshot " + used + " absorbs " +
        std::to_string(snap.journal_count) + " evaluations but journal " +
        jpath + " holds only " + std::to_string(records.size()) +
        " — the files do not belong to the same run");
  }

  core.reopen_journal(jr.valid_bytes, records.size(), snap.journal_count);
  core.restore_snapshot(snap, used);
  s->now_ = snap.now;
  // A resume off the fallback must not rotate the damaged primary over
  // the very generation it just restored from.
  s->snapshot_valid_ = !from_fallback;

  // Because the session snapshots after every mutation, the tail is at
  // most the one record of a crash between journal append and snapshot
  // rename — but re-applying a longer tail is the same loop, so handle
  // the general case. Replayed outcomes are already durable: observe()
  // must not journal them again.
  for (std::size_t i = snap.journal_count; i < records.size(); ++i) {
    const bo::JournalRecord& rec = records[i];
    if (rec.tag >= core.num_proposals() ||
        core.pending_tags().count(rec.tag) == 0) {
      throw io::CheckpointError(
          "journal corrupted: record " + std::to_string(rec.index) +
          " completes evaluation " + std::to_string(rec.tag) +
          " which the restored session never had in flight");
    }
    if (!same_point(rec.x, core.proposal(rec.tag))) {
      throw io::CheckpointError(
          "journal record " + std::to_string(rec.index) +
          " does not match this configuration's proposal stream "
          "(evaluation " + std::to_string(rec.tag) +
          " replays to a different point) — was the journal written by a "
          "different configuration or code version?");
    }
    bo::Outcome o;
    o.status = replay_status_from(rec.status, rec.index);
    o.value = o.status == sched::EvalStatus::Ok
                  ? rec.y
                  : std::numeric_limits<double>::quiet_NaN();
    o.attempts = rec.attempts;
    o.worker = rec.worker;
    o.start = rec.start;
    o.finish = rec.finish;
    o.error = rec.error;
    o.replayed = true;
    const bo::Observed ob = core.observe(rec.tag, o);
    if (rec.action != ob.action) {
      throw io::CheckpointError(
          "journal record " + std::to_string(rec.index) +
          " was applied as \"" + rec.action + "\" by the original session "
          "but replays as \"" + ob.action +
          "\" — the files and this build disagree on failure policy");
    }
    s->now_ = rec.finish;  // live observes tick the clock to their finish
  }
  // Re-snapshot when the tail advanced the state, and after a fallback
  // resume (so the next resume finds an intact primary again).
  if (records.size() > snap.journal_count || from_fallback) s->snapshot();
  return s;
}

void Session::set_trace(obs::TraceSink* sink) {
  trace_ = sink;
  core_.set_trace(sink);
  if (sink == nullptr) inflight_wall_.clear();
}

bo::Suggestion Session::suggest(const common::StopToken* stop) {
  bo::Suggestion s = core_.suggest(now_, stop);
  // The pre-commit gate: a suggest whose deadline passed while it
  // computed must not become durable, even when the computation ignored
  // every cooperative poll on the way (the watchdog path). Before the
  // snapshot below, nothing of this suggest has been published.
  if (stop != nullptr) stop->check("suggest commit");
  // Durable before the reply leaves the process: the tag in this
  // suggestion must survive eviction and crash — the client holds it and
  // will OBSERVE it against whatever object resumes from these files.
  snapshot();
  if (trace_ != nullptr) {
    inflight_wall_[s.tag] = std::chrono::steady_clock::now();
  }
  return s;
}

void Session::record_turnaround(std::size_t tag) {
  if (trace_ == nullptr) return;
  const auto it = inflight_wall_.find(tag);
  if (it == inflight_wall_.end()) return;  // suggested by a previous process
  const auto elapsed = std::chrono::steady_clock::now() - it->second;
  inflight_wall_.erase(it);
  trace_->add_time(obs::Phase::ObjectiveEval,
                   std::chrono::duration<double>(elapsed).count());
}

SessionObserved Session::observe_ok(std::size_t tag, double y) {
  bo::Outcome o;
  o.status = sched::EvalStatus::Ok;
  o.value = y;
  o.start = tag < core_.num_proposals() ? core_.proposal_submit_time(tag)
                                        : 0.0;
  o.finish = now_ + 1.0;
  const bo::Observed ob = core_.observe(tag, o);
  now_ += 1.0;
  record_turnaround(tag);
  SessionObserved out;
  out.action = ob.action;
  // The observe is durable the moment core_.observe returns (its journal
  // append fsyncs before the model applies it); a snapshot failure here
  // only widens the journal tail the next resume replays. The request is
  // committed, so the reply stays OK — but the fault is surfaced for the
  // host's health plane.
  try {
    snapshot();
  } catch (const io::CheckpointError& e) {
    out.snapshot_failed = true;
    out.storage_error = e.what();
  }
  return out;
}

SessionObserved Session::observe_failure(std::size_t tag,
                                         const std::string& status,
                                         const std::string& error) {
  bo::Outcome o;
  o.status = failure_status_from(status);
  o.value = std::numeric_limits<double>::quiet_NaN();
  o.start = tag < core_.num_proposals() ? core_.proposal_submit_time(tag)
                                        : 0.0;
  o.finish = now_ + 1.0;
  o.error = error;
  const bo::Observed ob = core_.observe(tag, o);
  now_ += 1.0;
  record_turnaround(tag);
  SessionObserved out;
  out.action = ob.action;
  try {
    snapshot();
  } catch (const io::CheckpointError& e) {
    out.snapshot_failed = true;
    out.storage_error = e.what();
  }
  return out;
}

std::string Session::status_json() const {
  std::string s = "{";
  auto put = [&s](const std::string& key, const std::string& value) {
    if (s.size() > 1) s += ",";
    s += io::json_quote(key) + ":" + value;
  };
  put("name", io::json_quote(name_));
  put("mode", io::json_quote(to_string(core_.config().mode)));
  put("acq", io::json_quote(to_string(core_.config().acq)));
  // Counts go through std::to_string, not json_number: the shortest
  // round-trip double for 10 is "1e+01", which is silly for a count.
  put("dim", std::to_string(core_.bounds().dim()));
  put("issued", std::to_string(core_.issued()));
  put("observed", std::to_string(core_.num_observations()));
  put("max_sims", std::to_string(core_.config().max_sims));
  put("init_done", core_.init_done() ? "true" : "false");
  std::string pending = "[";
  for (const std::size_t tag : core_.pending_tags()) {
    if (pending.size() > 1) pending += ",";
    pending += std::to_string(tag);
  }
  put("pending", pending + "]");
  if (core_.has_observations()) {
    put("best_y", io::json_number(core_.best_y()));
    std::string bx = "[";
    const Vec best = core_.best_x();
    for (std::size_t i = 0; i < best.size(); ++i) {
      if (i != 0) bx += ",";
      bx += io::json_number(best[i]);
    }
    put("best_x", bx + "]");
  } else {
    put("best_y", "null");
    put("best_x", "null");
  }
  return s + "}";
}

void Session::snapshot() {
  if (snapshot_valid_) {
    const std::string spath =
        bo::snapshot_file(core_.config().checkpoint_path);
    try {
      io::try_rename_file(spath, spath + ".old");
    } catch (const io::CheckpointError&) {
      // Rotation is defense in depth: a failed rotation leaves the
      // fallback one generation stale, which is still a valid resume
      // point — it never blocks the snapshot itself.
    }
  }
  snapshot_valid_ = false;
  core_.write_snapshot(now_, 0.0, sup_rng_);
  snapshot_valid_ = true;
}

}  // namespace easybo::serve
