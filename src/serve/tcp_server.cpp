#include "serve/tcp_server.h"

#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <string>

#include "common/error.h"

namespace easybo::serve {

namespace {

/// Wake-up cadence for every blocking point (accept and reads): short
/// enough that stop() and signal-driven shutdown feel immediate, long
/// enough to cost nothing.
constexpr int kPollMs = 200;

double monotonic_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Writes all of \p text, riding out EINTR and partial sends. False when
/// the peer is gone — the caller just closes; half-delivered replies to a
/// vanished client are not an error.
bool send_all(int fd, const std::string& text) {
  std::size_t off = 0;
  while (off < text.size()) {
    const ssize_t n = ::send(fd, text.data() + off, text.size() - off,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

TcpServer::TcpServer(SessionHost& host, TcpOptions options)
    : host_(host), options_(options) {
  EASYBO_REQUIRE(options_.max_clients > 0,
                 "TcpServer: max_clients must be positive");
  EASYBO_REQUIRE(options_.max_line_bytes > 0,
                 "TcpServer: max_line_bytes must be positive");
}

TcpServer::~TcpServer() { stop(); }

void TcpServer::start() {
  EASYBO_REQUIRE(!running(), "TcpServer::start: already running");
  stop_.store(false, std::memory_order_release);

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    throw Error(std::string("socket: ") + std::strerror(errno));
  }
  const int yes = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &yes, sizeof yes);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  // Loopback only: the protocol is unauthenticated by design
  // (docs/service-protocol.md); anything wider belongs behind a proxy.
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(options_.port));
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) <
      0) {
    const std::string msg = std::string("bind port ") +
                            std::to_string(options_.port) + ": " +
                            std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw Error(msg);
  }
  if (::listen(listen_fd_, 64) < 0) {
    const std::string msg = std::string("listen: ") + std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw Error(msg);
  }
  sockaddr_in bound{};
  socklen_t len = sizeof bound;
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len) ==
      0) {
    port_ = static_cast<int>(ntohs(bound.sin_port));
  } else {
    port_ = options_.port;
  }
  running_.store(true, std::memory_order_release);
  accept_thread_ = std::thread([this] { accept_loop(); });
}

void TcpServer::stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;
  stop_.store(true, std::memory_order_release);
  if (accept_thread_.joinable()) accept_thread_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  // Connection threads poll stop_ every kPollMs, so these joins are
  // bounded.
  std::list<std::unique_ptr<Conn>> conns;
  {
    std::lock_guard<std::mutex> lk(conns_mutex_);
    conns.swap(conns_);
  }
  for (auto& c : conns) {
    if (c->thread.joinable()) c->thread.join();
  }
}

TcpServer::Stats TcpServer::stats() const {
  Stats s;
  s.accepted = accepted_.load(std::memory_order_relaxed);
  s.rejected = rejected_.load(std::memory_order_relaxed);
  s.timed_out = timed_out_.load(std::memory_order_relaxed);
  s.oversized = oversized_.load(std::memory_order_relaxed);
  s.active = active_.load(std::memory_order_relaxed);
  return s;
}

void TcpServer::reap_finished() {
  std::lock_guard<std::mutex> lk(conns_mutex_);
  for (auto it = conns_.begin(); it != conns_.end();) {
    if ((*it)->done.load(std::memory_order_acquire)) {
      if ((*it)->thread.joinable()) (*it)->thread.join();
      it = conns_.erase(it);
    } else {
      ++it;
    }
  }
}

void TcpServer::accept_loop() {
  while (!stop_.load(std::memory_order_acquire)) {
    pollfd pfd{listen_fd_, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, kPollMs);
    if (ready < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (ready == 0) {
      reap_finished();
      continue;
    }
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR || errno == ECONNABORTED) continue;
      break;
    }
    reap_finished();
    if (active_.load(std::memory_order_relaxed) >= options_.max_clients) {
      // Shed at the door, loudly: an immediate one-line refusal beats a
      // connection that hangs in a backlog the host will never drain.
      rejected_.fetch_add(1, std::memory_order_relaxed);
      send_all(fd, "ERR busy (connection limit " +
                       std::to_string(options_.max_clients) + "; retry in " +
                       std::to_string(host_.retry_hint_ms()) + "ms)\n");
      ::close(fd);
      continue;
    }
    accepted_.fetch_add(1, std::memory_order_relaxed);
    active_.fetch_add(1, std::memory_order_relaxed);
    auto conn = std::make_unique<Conn>();
    Conn* raw = conn.get();
    {
      std::lock_guard<std::mutex> lk(conns_mutex_);
      conns_.push_back(std::move(conn));
    }
    raw->thread = std::thread([this, fd, raw] {
      serve_connection(fd);
      active_.fetch_sub(1, std::memory_order_relaxed);
      raw->done.store(true, std::memory_order_release);
    });
  }
}

void TcpServer::serve_connection(int fd) {
  std::string buf;
  char chunk[4096];
  double last_activity = monotonic_seconds();
  while (!stop_.load(std::memory_order_acquire)) {
    pollfd pfd{fd, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, kPollMs);
    if (ready < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (ready == 0) {
      if (options_.idle_timeout_s > 0 &&
          monotonic_seconds() - last_activity > options_.idle_timeout_s) {
        timed_out_.fetch_add(1, std::memory_order_relaxed);
        send_all(fd, "ERR idle timeout, closing\n");
        break;
      }
      continue;
    }
    const ssize_t n = ::recv(fd, chunk, sizeof chunk, 0);
    if (n == 0) break;  // clean disconnect
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    last_activity = monotonic_seconds();
    buf.append(chunk, static_cast<std::size_t>(n));

    bool drop = false;
    std::size_t pos = 0;
    std::size_t nl = 0;
    while ((nl = buf.find('\n', pos)) != std::string::npos) {
      std::string line = buf.substr(pos, nl - pos);
      pos = nl + 1;
      if (!line.empty() && line.back() == '\r') line.pop_back();
      if (!send_all(fd, host_.handle_line(line) + "\n")) {
        drop = true;
        break;
      }
      // The idle clock measures CLIENT silence, so it restarts when the
      // reply goes out, not when the request came in: a slow in-flight
      // command (a long SUGGEST) must not eat into the client's idle
      // budget (tests/test_tcp_server.cpp pins this).
      last_activity = monotonic_seconds();
    }
    buf.erase(0, pos);
    if (drop) break;
    if (buf.size() > options_.max_line_bytes) {
      // A newline may never come; once the frame is blown there is no
      // spot to resynchronize from, so refuse and hang up.
      oversized_.fetch_add(1, std::memory_order_relaxed);
      send_all(fd, "ERR request line exceeds " +
                       std::to_string(options_.max_line_bytes) +
                       " bytes, closing\n");
      break;
    }
  }
  ::close(fd);
}

}  // namespace easybo::serve
