#pragma once
/// \file tcp_server.h
/// \brief Multi-client TCP transport for SessionHost.
///
/// TcpServer pumps the SessionHost line protocol over TCP with one
/// thread per accepted connection — the host itself is thread-safe
/// (serve/host.h), so connections proceed in parallel and only rendezvous
/// on a per-session basis inside the host. The transport adds the
/// connection-level hygiene the host cannot see:
///
///  - a connection cap: accepts beyond TcpOptions::max_clients get one
///    "ERR busy ..." line and are closed immediately (never queued);
///  - a per-connection idle timeout: a client that goes quiet gets one
///    "ERR idle timeout ..." line and is disconnected, so dead peers
///    cannot pin connection slots;
///  - a line-length cap on the wire: a peer that streams bytes without a
///    newline is cut off at TcpOptions::max_line_bytes (once framing is
///    lost there is nothing to resynchronize on);
///  - clean shutdown: stop() (or the stop flag polled every ~200 ms)
///    unblocks the accept loop and every connection thread promptly —
///    nothing sits in an uninterruptible read.
///
/// The same object serves examples/easybo_serve.cpp and the in-process
/// concurrent-load harness in bench/serve_load.cpp; port 0 binds an
/// ephemeral port reported by port().

#include <atomic>
#include <cstddef>
#include <list>
#include <memory>
#include <mutex>
#include <thread>

#include "serve/host.h"

namespace easybo::serve {

struct TcpOptions {
  int port = 0;                 ///< 0 = ephemeral (see TcpServer::port())
  std::size_t max_clients = 64; ///< concurrent connections before "ERR busy"
  double idle_timeout_s = 300.0;  ///< quiet-connection cutoff; 0 = never
  std::size_t max_line_bytes = 1u << 20;  ///< wire cap per request line
};

class TcpServer {
 public:
  /// \p host must outlive the server. Nothing happens until start().
  TcpServer(SessionHost& host, TcpOptions options);
  ~TcpServer();  ///< stop() if still running

  TcpServer(const TcpServer&) = delete;
  TcpServer& operator=(const TcpServer&) = delete;

  /// Binds (IPv4 loopback-any), listens and spawns the accept loop.
  /// Throws easybo::Error when the port cannot be bound.
  void start();

  /// Signals every thread, unblocks the accept loop and joins all of
  /// them. Idempotent.
  void stop();

  /// The bound port (resolves port 0 after start()).
  int port() const { return port_; }
  bool running() const { return running_.load(std::memory_order_acquire); }

  /// Lifetime transport counters (monotonic except active).
  struct Stats {
    std::size_t accepted = 0;   ///< connections taken on
    std::size_t rejected = 0;   ///< closed at accept for the client cap
    std::size_t timed_out = 0;  ///< closed for idling
    std::size_t oversized = 0;  ///< closed for an unframed flood
    std::size_t active = 0;     ///< currently connected
  };
  Stats stats() const;

 private:
  struct Conn {
    std::thread thread;
    std::atomic<bool> done{false};
  };

  void accept_loop();
  void serve_connection(int fd);
  void reap_finished();

  SessionHost& host_;
  TcpOptions options_;
  int listen_fd_ = -1;
  int port_ = 0;
  std::atomic<bool> running_{false};
  std::atomic<bool> stop_{false};
  std::thread accept_thread_;

  std::mutex conns_mutex_;
  std::list<std::unique_ptr<Conn>> conns_;

  std::atomic<std::size_t> accepted_{0};
  std::atomic<std::size_t> rejected_{0};
  std::atomic<std::size_t> timed_out_{0};
  std::atomic<std::size_t> oversized_{0};
  std::atomic<std::size_t> active_{0};
};

}  // namespace easybo::serve
