#pragma once
/// \file host.h
/// \brief Multi-session host: many named AskTellCore sessions, one process.
///
/// SessionHost owns a bounded set of live Session objects and the state
/// directory their durability files live in. It speaks a line protocol
/// (one request line in, one reply line out — docs/service-protocol.md):
///
///   NEW <name> <config-json>      create (or re-open) a session
///   SUGGEST <name>                next point to evaluate
///   OBSERVE <name> <tag> <y>      successful evaluation result
///   OBSERVE <name> <tag> fail <status> [detail...]   failed evaluation
///   STATUS <name>                 one-line JSON session status
///   STATUS                        one-line JSON host health
///   CLOSE <name>                  drop the live object (files remain)
///
/// Every reply is a single line: "OK[ <payload>]" or "ERR <message>".
///
/// Sessions are durable by construction (Session snapshots after every
/// mutation), which makes the live set a pure cache: when it exceeds
/// max_live the least-recently-used session is simply dropped — nothing
/// to flush — and any command naming a non-live session whose state files
/// exist transparently resumes it first. CLOSE is the same drop,
/// requested explicitly. A session is gone for good only when its files
/// are deleted from the state directory, which the host never does.
///
/// Concurrency. handle_line() is fully thread-safe and is meant to be
/// called from many transport threads at once (examples/easybo_serve.cpp
/// runs one thread per TCP connection). The guarantees, in order of
/// importance:
///
///  - commands naming the SAME session are serialized by a per-session
///    mutex — a session's suggest/observe interleaving, and therefore its
///    proposal stream, is exactly the order its commands won that lock,
///    indistinguishable from a single-threaded host fed the same order;
///  - commands naming DIFFERENT sessions never wait on each other's model
///    math or disk I/O — the host-level table lock covers only name→slot
///    lookup and LRU bookkeeping, never a suggest, observe, resume or
///    snapshot;
///  - LRU eviction under the table lock only try_locks its victims, so a
///    busy session is skipped rather than waited on; the live set can
///    therefore transiently exceed max_live — by at most the number of
///    commands in flight — and every completed command re-trims it.
///
/// Deadline-bounded execution. With HostLimits::serve_workers > 0 the
/// host runs SUGGEST/OBSERVE through a bounded WorkQueue instead of on
/// the calling (connection) thread: the caller parses, submits a closure
/// and waits on it with a per-request deadline. Three mechanisms keep one
/// slow session from starving the rest (docs/service-protocol.md
/// § Deadlines, docs/failure-model.md § Watchdog):
///
///  - a cooperative cancellation token (common::StopToken carrying the
///    request deadline) is threaded through the session's model math;
///    when it fires mid-SUGGEST the computation unwinds at a safe
///    checkpoint *before* anything is committed, the in-memory session is
///    dropped (disk still holds the exact pre-suggest state — a cancelled
///    suggest consumed nothing) and the client gets "ERR deadline ...;
///    retry";
///  - requests that sat in the admission queue longer than queue_wait_s
///    are shed at dequeue without touching the session ("ERR busy ...;
///    retry"), and submit() itself refuses when queue_capacity requests
///    are already waiting;
///  - a request that ignores cancellation past watchdog_grace_s trips the
///    watchdog: the caller stops waiting, replies "ERR deadline", and the
///    offending session — only that session — is quarantined once its
///    runaway computation finally returns. A pre-commit token check in
///    Session::suggest guarantees even the runaway cannot commit a
///    proposal past its deadline.
///
/// Retry hints in "ERR busy"/"ERR deadline" replies are derived from the
/// host's online queue-wait/execution statistics (retry_hint_ms()).
///
/// Overload and storage failure. The host sheds load instead of queueing
/// without bound: when more than HostLimits::max_inflight commands are in
/// flight the newcomer gets "ERR busy ..." immediately. Storage faults
/// follow a journal-first contract (docs/failure-model.md): a mutation
/// whose journal append failed is rolled back by dropping the in-memory
/// session and *quarantining* the name — subsequent commands get
/// "ERR quarantined ..." without touching the damaged files until CLOSE
/// clears the quarantine; a snapshot failure after a successful append is
/// already durable, so the request still replies OK and only the health
/// plane records the fault. The bare "STATUS" health probe bypasses both
/// shedding and all per-session locks, so it stays responsive while the
/// host is saturated or degraded.

#include <atomic>
#include <chrono>
#include <cstddef>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "common/stop_token.h"
#include "obs/online_stats.h"
#include "obs/stream.h"
#include "obs/trace.h"
#include "serve/session.h"
#include "serve/work_queue.h"

namespace easybo::serve {

/// True when \p name is a valid session name: nonempty, at most 128
/// characters, drawn from [A-Za-z0-9._-], not starting with '.' or '-'
/// (names become file names inside the state directory and wire tokens;
/// this set can never escape either role).
bool valid_session_name(const std::string& name);

/// Abuse/overload knobs. The defaults are generous enough that a
/// well-behaved client never notices them.
struct HostLimits {
  /// Commands allowed in flight at once before newcomers are shed with
  /// "ERR busy". The bare "STATUS" health probe is exempt.
  std::size_t max_inflight = 256;
  /// Longest accepted request line; longer lines get one "ERR" reply.
  /// Transports enforce the same cap on the wire (TcpOptions).
  std::size_t max_line_bytes = 1u << 20;
  /// Worker threads executing SUGGEST/OBSERVE off the calling thread.
  /// 0 (the default) keeps the direct path: the calling thread runs the
  /// command itself, with no deadlines — exactly the pre-pool behavior.
  std::size_t serve_workers = 0;
  /// Admission-queue bound (pool mode): submissions beyond it are shed
  /// with "ERR busy" before anything is enqueued.
  std::size_t queue_capacity = 64;
  /// Per-request deadline in seconds (pool mode). 0 disables deadlines:
  /// requests run to completion however long they take.
  double request_deadline_s = 2.0;
  /// Shed a request at dequeue when it sat queued longer than this
  /// (pool mode; its client has likely timed out already). 0 disables.
  double queue_wait_s = 1.0;
  /// How long past the deadline a request may ignore cancellation before
  /// the watchdog classifies it as stuck and quarantines its session.
  double watchdog_grace_s = 2.0;
};

class SessionHost {
 public:
  /// \param state_dir  directory for per-session state files (created if
  ///                   absent): "<name>.config" (the NEW command's JSON),
  ///                   "<name>.journal", "<name>.snapshot" and the
  ///                   rotated "<name>.snapshot.old"
  /// \param max_live   cap on concurrently live Session objects; the
  ///                   least-recently-used beyond it is dropped (its
  ///                   files stay resumable)
  /// \param limits     overload/abuse knobs, see HostLimits
  SessionHost(std::string state_dir, std::size_t max_live,
              HostLimits limits = {});

  /// Joins the worker pool (draining queued requests) before any host
  /// state the workers touch is torn down.
  ~SessionHost();

  /// Handles one protocol line and returns the one-line reply. Never
  /// throws for malformed input or session errors — those become "ERR "
  /// replies (the host serves many clients; one bad request must not
  /// take the process down). Thread-safe; see the file comment for the
  /// ordering guarantees.
  std::string handle_line(const std::string& line);

  /// Counters mirror to \p sink as "serve.shed", "serve.io_faults",
  /// "serve.quarantined", "serve.deadline_cut", "serve.queue_shed" and
  /// "serve.watchdog_trips"; sessions loaded afterwards inherit the sink
  /// too (core counters plus wall SUGGEST-to-OBSERVE turnaround spans).
  /// Set once before serving traffic; the sink must outlive the host (or
  /// be reset to nullptr first).
  void set_trace(obs::TraceSink* sink) {
    trace_.store(sink, std::memory_order_release);
  }

  /// Registers the live telemetry stream for the health plane: when set,
  /// the bare-"STATUS" health object gains a "stream" field holding the
  /// sink's stats_json() — events emitted/dropped plus the online eval
  /// latency/inner-evals/retry statistics. Usually the same object as
  /// set_trace's sink (easybo_serve --stream wires both). Same lifetime
  /// contract as set_trace.
  void set_stream(obs::StreamSink* sink) {
    stream_.store(sink, std::memory_order_release);
  }

  /// Test/chaos seam: injects a sleep into SUGGEST on one named session,
  /// while it holds its slot lock (simulating a slow acquisition
  /// maximization). With ignore_stop false the sleep polls the request's
  /// cancellation token every few milliseconds — a deadline cuts it like
  /// any cooperative computation. With ignore_stop true it sleeps
  /// through, modelling a computation with no safe checkpoints — the
  /// watchdog path. Behaviorally inert unless set (and session matches).
  struct DebugSlowdown {
    std::string session;  ///< empty = disabled
    double sleep_s = 0.0;
    bool ignore_stop = false;
  };
  void set_debug_slowdown(DebugSlowdown d);

  /// Number of live (loaded) sessions. Quarantined names are not live.
  std::size_t live_count() const;
  bool is_live(const std::string& name) const;
  bool is_quarantined(const std::string& name) const;

  /// The bare-"STATUS" health object: live/quarantined session counts,
  /// in-flight and lifetime request counts, shed/storage-fault/deadline
  /// counters, "storage":"ok"|"degraded" (degraded while any session is
  /// quarantined), and — in pool mode — worker/queue gauges plus the
  /// online queue-wait and execution statistics behind retry_hint_ms().
  /// Takes no per-session lock and touches no disk.
  std::string health_json() const;

  std::size_t shed_count() const {
    return shed_.load(std::memory_order_relaxed);
  }
  std::size_t io_fault_count() const {
    return io_faults_.load(std::memory_order_relaxed);
  }
  std::size_t quarantined_count() const {
    return quarantine_gauge_.load(std::memory_order_relaxed);
  }
  std::size_t deadline_cut_count() const {
    return deadline_cut_.load(std::memory_order_relaxed);
  }
  std::size_t queue_shed_count() const {
    return queue_shed_.load(std::memory_order_relaxed);
  }
  std::size_t watchdog_trip_count() const {
    return watchdog_trips_.load(std::memory_order_relaxed);
  }

  /// Requests waiting for a worker right now (0 in direct mode).
  std::size_t queue_depth() const;

  /// How long a shed/deadline-cut client should wait before retrying, in
  /// milliseconds: derived from the online queue-wait p90 and execution
  /// CEMA (2 * wait_p90 + exec_cema, clamped to [25ms, 30s]; 100ms until
  /// the first sample). Embedded in every "ERR busy"/"ERR deadline"
  /// reply as "retry in <N>ms".
  std::size_t retry_hint_ms() const;

  const std::string& state_dir() const { return state_dir_; }
  std::size_t max_live() const { return max_live_; }
  const HostLimits& limits() const { return limits_; }

 private:
  /// One session name's place in the host. Slots outlive their Session
  /// objects (they also carry quarantine state) and are only ever erased
  /// while nobody else can hold a reference, which in practice means
  /// never — the map is bounded by the set of names with on-disk state.
  struct Slot {
    /// Serializes every command naming this session, including its
    /// resume-on-demand and all of its disk I/O. Timed so a deadline
    /// request can bound its lock wait (try_lock_until) instead of
    /// queueing behind a slow holder indefinitely.
    std::timed_mutex mutex;
    /// Guarded by mutex. Null while not live.
    std::unique_ptr<Session> session;
    /// Guarded by mutex. A quarantined name refuses everything but
    /// STATUS and CLOSE; see quarantine_locked().
    bool quarantined = false;
    std::string quarantine_reason;
    /// Set (without holding mutex — the runaway has it) when the
    /// watchdog trips on this session; converted into a quarantine by
    /// watchdog_quarantine() once the runaway computation returns, or
    /// cleared by a CLOSE that wins the race. While set, commands refuse
    /// instead of blocking on the runaway's lock.
    std::atomic<bool> poisoned{false};
    /// Leaf lock (never held while taking any other) for the small
    /// metadata below, readable while mutex is held elsewhere.
    std::mutex meta_mutex;
    /// Guarded by meta_mutex. Why the watchdog poisoned this slot.
    std::string poison_reason;
    /// Guarded by meta_mutex. Last successfully computed status_json,
    /// served by STATUS's try-lock fast path while the slot is busy.
    std::string last_status;
    /// Guarded by the table mutex: whether (and where) this slot sits in
    /// lru_. in_lru is true exactly while session is loaded, except for
    /// the instant between a load and its mark_used().
    bool in_lru = false;
    std::list<std::string>::iterator lru_pos;
  };

  std::string config_path(const std::string& name) const;
  std::string checkpoint_base(const std::string& name) const;

  obs::TraceSink* trace() const {
    return trace_.load(std::memory_order_acquire);
  }

  /// Finds the slot for \p name, creating it when \p create_missing.
  /// Also pre-evicts LRU victims when this command is about to load a
  /// session into a full live set. Takes the table lock.
  std::shared_ptr<Slot> obtain_slot(const std::string& name,
                                    bool create_missing);

  /// Drops least-recently-used sessions until at most \p target remain
  /// live. Caller holds the table lock. Victims whose slot mutex is held
  /// elsewhere are skipped, never waited on — so the live set can remain
  /// above target by the number of sessions busy at that instant (at
  /// most one per transport thread; the next command trims again).
  void evict_locked(const Slot* keep, std::size_t target);

  /// LRU bookkeeping; both take the table lock and are safe to call
  /// while holding a slot mutex (the reverse order — table lock, then
  /// *blocking* on a slot mutex — never happens; eviction try_locks).
  void mark_used(const std::string& name, Slot& slot);
  void mark_unloaded(const std::string& name, Slot& slot);

  /// Loads slot.session from the state directory: resume, or re-create
  /// from the persisted config when nothing beyond the config survived a
  /// crashed NEW. Caller holds the slot mutex. Throws on failure.
  void load_locked(const std::string& name, Slot& slot);

  /// Drops the in-memory session and marks the name quarantined. Caller
  /// holds the slot mutex.
  void quarantine_locked(const std::string& name, Slot& slot,
                         const std::string& reason);

  /// Recomputes and caches the slot's status_json (STATUS fast path).
  /// Caller holds the slot mutex; slot.session must be loaded.
  void cache_status_locked(Slot& slot);

  /// Marks \p name poisoned with \p reason (watchdog trip). Does NOT
  /// take the slot mutex — the runaway request holds it.
  void poison(const std::string& name, const std::string& reason);

  /// Runs on a worker thread after an abandoned-while-Running request's
  /// closure finally returns: converts the poison mark into a proper
  /// quarantine (unless a CLOSE intervened and cleared it).
  void watchdog_quarantine(const std::string& name);

  void note_io_fault();
  void note_deadline_cut();
  void note_queue_shed();
  void note_watchdog_trip();
  void record_wait(double seconds);
  void record_exec(double seconds);

  /// Pool-mode path for SUGGEST/OBSERVE: submit to the WorkQueue, wait
  /// out the deadline (+ watchdog grace), classify the outcome.
  std::string run_deadline(const std::string& line, const std::string& name);

  /// The closure a worker executes: queue-wait-cap check, then dispatch
  /// with the request's cancellation token. Never throws.
  std::string run_pooled(const std::string& line,
                         const common::StopToken& stop,
                         double queued_seconds);

  /// Executes one parsed command. \p stop is the request's cancellation
  /// token (null on the direct path and for NEW/STATUS/CLOSE).
  std::string dispatch(const std::string& line,
                       const common::StopToken* stop);

  std::string state_dir_;
  std::size_t max_live_;
  HostLimits limits_;

  mutable std::mutex table_mutex_;
  /// Guarded by table_mutex_. Values are shared_ptr so a command thread
  /// can release the table lock while it works under the slot's own
  /// mutex.
  std::map<std::string, std::shared_ptr<Slot>> slots_;
  /// Guarded by table_mutex_. Names of loaded sessions, most recent
  /// first.
  std::list<std::string> lru_;

  std::atomic<obs::TraceSink*> trace_{nullptr};
  std::atomic<obs::StreamSink*> stream_{nullptr};
  std::atomic<std::size_t> inflight_{0};
  std::atomic<std::size_t> requests_{0};
  std::atomic<std::size_t> shed_{0};
  std::atomic<std::size_t> io_faults_{0};
  std::atomic<std::size_t> quarantine_gauge_{0};
  std::atomic<std::size_t> deadline_cut_{0};
  std::atomic<std::size_t> queue_shed_{0};
  std::atomic<std::size_t> watchdog_trips_{0};

  /// Guarded by stats_mutex_: online queue-wait and execution-time
  /// statistics (seconds) behind retry_hint_ms() and the health plane.
  mutable std::mutex stats_mutex_;
  obs::OnlineStat wait_stats_;
  obs::OnlineStat exec_stats_;

  mutable std::mutex slowdown_mutex_;
  DebugSlowdown slowdown_;

  /// Present only in pool mode (serve_workers > 0). Declared LAST so it
  /// is destroyed FIRST: workers touch every member above during drain.
  std::unique_ptr<WorkQueue> queue_;
};

}  // namespace easybo::serve
