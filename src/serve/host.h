#pragma once
/// \file host.h
/// \brief Multi-session host: many named AskTellCore sessions, one process.
///
/// SessionHost owns a bounded set of live Session objects and the state
/// directory their durability files live in. It speaks a line protocol
/// (one request line in, one reply line out — docs/service-protocol.md):
///
///   NEW <name> <config-json>      create (or re-open) a session
///   SUGGEST <name>                next point to evaluate
///   OBSERVE <name> <tag> <y>      successful evaluation result
///   OBSERVE <name> <tag> fail <status> [detail...]   failed evaluation
///   STATUS <name>                 one-line JSON session status
///   CLOSE <name>                  drop the live object (files remain)
///
/// Every reply is a single line: "OK[ <payload>]" or "ERR <message>".
///
/// Sessions are durable by construction (Session snapshots after every
/// mutation), which makes the live set a pure cache: when it exceeds
/// max_live the least-recently-used session is simply dropped — nothing
/// to flush — and any command naming a non-live session whose state files
/// exist transparently resumes it first. CLOSE is the same drop,
/// requested explicitly. A session is gone for good only when its files
/// are deleted from the state directory, which the host never does.
///
/// The host is deliberately transport-agnostic and single-threaded:
/// handle_line() is the entire surface, and the CLI (examples/
/// easybo_serve.cpp) pumps it from stdin or a socket. One request at a
/// time keeps every session's suggest/observe ordering — and therefore
/// its proposal stream — deterministic without locks.

#include <cstddef>
#include <list>
#include <map>
#include <memory>
#include <string>

#include "serve/session.h"

namespace easybo::serve {

/// True when \p name is a valid session name: nonempty, at most 128
/// characters, drawn from [A-Za-z0-9._-], not starting with '.' or '-'
/// (names become file names inside the state directory and wire tokens;
/// this set can never escape either role).
bool valid_session_name(const std::string& name);

class SessionHost {
 public:
  /// \param state_dir  directory for per-session state files (created if
  ///                   absent): "<name>.config" (the NEW command's JSON),
  ///                   "<name>.journal" and "<name>.snapshot"
  /// \param max_live   cap on concurrently live Session objects; the
  ///                   least-recently-used beyond it is dropped (its
  ///                   files stay resumable)
  SessionHost(std::string state_dir, std::size_t max_live);

  /// Handles one protocol line and returns the one-line reply. Never
  /// throws for malformed input or session errors — those become "ERR "
  /// replies (the host serves many clients; one bad request must not
  /// take the process down).
  std::string handle_line(const std::string& line);

  std::size_t live_count() const { return live_.size(); }
  bool is_live(const std::string& name) const {
    return live_.count(name) != 0;
  }

  const std::string& state_dir() const { return state_dir_; }
  std::size_t max_live() const { return max_live_; }

 private:
  std::string config_path(const std::string& name) const;
  std::string checkpoint_base(const std::string& name) const;

  /// The live session for \p name, resuming it from the state directory
  /// when necessary. Throws easybo::Error when the name is invalid or
  /// the session does not exist (no config file).
  Session& acquire(const std::string& name);

  /// Marks \p name most-recently-used.
  void touch(const std::string& name);

  /// Inserts a live session and evicts LRU entries beyond max_live.
  Session& adopt(std::unique_ptr<Session> session);

  struct Live {
    std::unique_ptr<Session> session;
    /// Position in lru_ (most recent at the front).
    std::list<std::string>::iterator lru_pos;
  };

  std::string state_dir_;
  std::size_t max_live_;
  std::map<std::string, Live> live_;
  std::list<std::string> lru_;  ///< most-recently-used first
};

}  // namespace easybo::serve
