#pragma once
/// \file host.h
/// \brief Multi-session host: many named AskTellCore sessions, one process.
///
/// SessionHost owns a bounded set of live Session objects and the state
/// directory their durability files live in. It speaks a line protocol
/// (one request line in, one reply line out — docs/service-protocol.md):
///
///   NEW <name> <config-json>      create (or re-open) a session
///   SUGGEST <name>                next point to evaluate
///   OBSERVE <name> <tag> <y>      successful evaluation result
///   OBSERVE <name> <tag> fail <status> [detail...]   failed evaluation
///   STATUS <name>                 one-line JSON session status
///   STATUS                        one-line JSON host health
///   CLOSE <name>                  drop the live object (files remain)
///
/// Every reply is a single line: "OK[ <payload>]" or "ERR <message>".
///
/// Sessions are durable by construction (Session snapshots after every
/// mutation), which makes the live set a pure cache: when it exceeds
/// max_live the least-recently-used session is simply dropped — nothing
/// to flush — and any command naming a non-live session whose state files
/// exist transparently resumes it first. CLOSE is the same drop,
/// requested explicitly. A session is gone for good only when its files
/// are deleted from the state directory, which the host never does.
///
/// Concurrency. handle_line() is fully thread-safe and is meant to be
/// called from many transport threads at once (examples/easybo_serve.cpp
/// runs one thread per TCP connection). The guarantees, in order of
/// importance:
///
///  - commands naming the SAME session are serialized by a per-session
///    mutex — a session's suggest/observe interleaving, and therefore its
///    proposal stream, is exactly the order its commands won that lock,
///    indistinguishable from a single-threaded host fed the same order;
///  - commands naming DIFFERENT sessions never wait on each other's model
///    math or disk I/O — the host-level table lock covers only name→slot
///    lookup and LRU bookkeeping, never a suggest, observe, resume or
///    snapshot;
///  - LRU eviction under the table lock only try_locks its victims, so a
///    busy session is skipped rather than waited on; the live set can
///    therefore transiently exceed max_live — by at most the number of
///    commands in flight — and every completed command re-trims it.
///
/// Overload and storage failure. The host sheds load instead of queueing
/// without bound: when more than HostLimits::max_inflight commands are in
/// flight the newcomer gets "ERR busy ..." immediately. Storage faults
/// follow a journal-first contract (docs/failure-model.md): a mutation
/// whose journal append failed is rolled back by dropping the in-memory
/// session and *quarantining* the name — subsequent commands get
/// "ERR quarantined ..." without touching the damaged files until CLOSE
/// clears the quarantine; a snapshot failure after a successful append is
/// already durable, so the request still replies OK and only the health
/// plane records the fault. The bare "STATUS" health probe bypasses both
/// shedding and all per-session locks, so it stays responsive while the
/// host is saturated or degraded.

#include <atomic>
#include <cstddef>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "obs/stream.h"
#include "obs/trace.h"
#include "serve/session.h"

namespace easybo::serve {

/// True when \p name is a valid session name: nonempty, at most 128
/// characters, drawn from [A-Za-z0-9._-], not starting with '.' or '-'
/// (names become file names inside the state directory and wire tokens;
/// this set can never escape either role).
bool valid_session_name(const std::string& name);

/// Abuse/overload knobs. The defaults are generous enough that a
/// well-behaved client never notices them.
struct HostLimits {
  /// Commands allowed in flight at once before newcomers are shed with
  /// "ERR busy". The bare "STATUS" health probe is exempt.
  std::size_t max_inflight = 256;
  /// Longest accepted request line; longer lines get one "ERR" reply.
  /// Transports enforce the same cap on the wire (TcpOptions).
  std::size_t max_line_bytes = 1u << 20;
};

class SessionHost {
 public:
  /// \param state_dir  directory for per-session state files (created if
  ///                   absent): "<name>.config" (the NEW command's JSON),
  ///                   "<name>.journal", "<name>.snapshot" and the
  ///                   rotated "<name>.snapshot.old"
  /// \param max_live   cap on concurrently live Session objects; the
  ///                   least-recently-used beyond it is dropped (its
  ///                   files stay resumable)
  /// \param limits     overload/abuse knobs, see HostLimits
  SessionHost(std::string state_dir, std::size_t max_live,
              HostLimits limits = {});

  /// Handles one protocol line and returns the one-line reply. Never
  /// throws for malformed input or session errors — those become "ERR "
  /// replies (the host serves many clients; one bad request must not
  /// take the process down). Thread-safe; see the file comment for the
  /// ordering guarantees.
  std::string handle_line(const std::string& line);

  /// Counters mirror to \p sink as "serve.shed", "serve.io_faults" and
  /// "serve.quarantined"; sessions loaded afterwards inherit the sink too
  /// (core counters plus wall SUGGEST-to-OBSERVE turnaround spans). Set
  /// once before serving traffic; the sink must outlive the host (or be
  /// reset to nullptr first).
  void set_trace(obs::TraceSink* sink) {
    trace_.store(sink, std::memory_order_release);
  }

  /// Registers the live telemetry stream for the health plane: when set,
  /// the bare-"STATUS" health object gains a "stream" field holding the
  /// sink's stats_json() — events emitted/dropped plus the online eval
  /// latency/inner-evals/retry statistics. Usually the same object as
  /// set_trace's sink (easybo_serve --stream wires both). Same lifetime
  /// contract as set_trace.
  void set_stream(obs::StreamSink* sink) {
    stream_.store(sink, std::memory_order_release);
  }

  /// Number of live (loaded) sessions. Quarantined names are not live.
  std::size_t live_count() const;
  bool is_live(const std::string& name) const;
  bool is_quarantined(const std::string& name) const;

  /// The bare-"STATUS" health object: live/quarantined session counts,
  /// in-flight and lifetime request counts, shed and storage-fault
  /// counts, and "storage":"ok"|"degraded" (degraded while any session
  /// is quarantined). Takes no per-session lock and touches no disk.
  std::string health_json() const;

  std::size_t shed_count() const {
    return shed_.load(std::memory_order_relaxed);
  }
  std::size_t io_fault_count() const {
    return io_faults_.load(std::memory_order_relaxed);
  }
  std::size_t quarantined_count() const {
    return quarantine_gauge_.load(std::memory_order_relaxed);
  }

  const std::string& state_dir() const { return state_dir_; }
  std::size_t max_live() const { return max_live_; }
  const HostLimits& limits() const { return limits_; }

 private:
  /// One session name's place in the host. Slots outlive their Session
  /// objects (they also carry quarantine state) and are only ever erased
  /// while nobody else can hold a reference, which in practice means
  /// never — the map is bounded by the set of names with on-disk state.
  struct Slot {
    /// Serializes every command naming this session, including its
    /// resume-on-demand and all of its disk I/O.
    std::mutex mutex;
    /// Guarded by mutex. Null while not live.
    std::unique_ptr<Session> session;
    /// Guarded by mutex. A quarantined name refuses everything but
    /// STATUS and CLOSE; see quarantine_locked().
    bool quarantined = false;
    std::string quarantine_reason;
    /// Guarded by the table mutex: whether (and where) this slot sits in
    /// lru_. in_lru is true exactly while session is loaded, except for
    /// the instant between a load and its mark_used().
    bool in_lru = false;
    std::list<std::string>::iterator lru_pos;
  };

  std::string config_path(const std::string& name) const;
  std::string checkpoint_base(const std::string& name) const;

  obs::TraceSink* trace() const {
    return trace_.load(std::memory_order_acquire);
  }

  /// Finds the slot for \p name, creating it when \p create_missing.
  /// Also pre-evicts LRU victims when this command is about to load a
  /// session into a full live set. Takes the table lock.
  std::shared_ptr<Slot> obtain_slot(const std::string& name,
                                    bool create_missing);

  /// Drops least-recently-used sessions until at most \p target remain
  /// live. Caller holds the table lock. Victims whose slot mutex is held
  /// elsewhere are skipped, never waited on — so the live set can remain
  /// above target by the number of sessions busy at that instant (at
  /// most one per transport thread; the next command trims again).
  void evict_locked(const Slot* keep, std::size_t target);

  /// LRU bookkeeping; both take the table lock and are safe to call
  /// while holding a slot mutex (the reverse order — table lock, then
  /// *blocking* on a slot mutex — never happens; eviction try_locks).
  void mark_used(const std::string& name, Slot& slot);
  void mark_unloaded(const std::string& name, Slot& slot);

  /// Loads slot.session from the state directory: resume, or re-create
  /// from the persisted config when nothing beyond the config survived a
  /// crashed NEW. Caller holds the slot mutex. Throws on failure.
  void load_locked(const std::string& name, Slot& slot);

  /// Drops the in-memory session and marks the name quarantined. Caller
  /// holds the slot mutex.
  void quarantine_locked(const std::string& name, Slot& slot,
                         const std::string& reason);

  void note_io_fault();

  std::string dispatch(const std::string& line);

  std::string state_dir_;
  std::size_t max_live_;
  HostLimits limits_;

  mutable std::mutex table_mutex_;
  /// Guarded by table_mutex_. Values are shared_ptr so a command thread
  /// can release the table lock while it works under the slot's own
  /// mutex.
  std::map<std::string, std::shared_ptr<Slot>> slots_;
  /// Guarded by table_mutex_. Names of loaded sessions, most recent
  /// first.
  std::list<std::string> lru_;

  std::atomic<obs::TraceSink*> trace_{nullptr};
  std::atomic<obs::StreamSink*> stream_{nullptr};
  std::atomic<std::size_t> inflight_{0};
  std::atomic<std::size_t> requests_{0};
  std::atomic<std::size_t> shed_{0};
  std::atomic<std::size_t> io_faults_{0};
  std::atomic<std::size_t> quarantine_gauge_{0};
};

}  // namespace easybo::serve
