#pragma once
/// \file session_config.h
/// \brief Wire-format session configuration for the session host.
///
/// A session is created with one JSON object (the `NEW` command's
/// argument, docs/service-protocol.md). This module is the single
/// translation point between that wire object and {BoConfig, Bounds} —
/// the server parses with it AND clients (the load-generator bench, the
/// smoke tests) serialize with it, so a client that wants to predict a
/// session's proposal stream bit-for-bit can build the identical BoConfig
/// for a standalone BoEngine run. The parsed config is also what gets
/// fingerprinted into the session's checkpoint files, so a config file
/// that round-trips through here resumes cleanly.
///
/// Only the knobs that make sense across a process boundary are exposed;
/// notably there is no checkpoint_path (the host owns file placement) and
/// on_eval_failure cannot be "abort" (the protocol reports failures as
/// replies, it has no abort channel — sessions default to "discard").

#include <string>

#include "bo/config.h"
#include "opt/objective.h"

namespace easybo::serve {

/// Everything a session needs that came over the wire.
struct SessionSpec {
  bo::BoConfig config;
  opt::Bounds bounds;
};

/// Parses one session-config JSON object. Requires either "dim" (bounds
/// default to [0,1]^dim) or explicit "lower"/"upper" arrays. Optional
/// keys (BoConfig defaults apply, except on_eval_failure which defaults
/// to "discard" for sessions): "seed", "mode"
/// (sequential|sync|async), "acq" (EI|LCB|EasyBO|pBO|pHCBO|BUCB|LP|TS|
/// Hedge), "penalize", "batch", "init_points", "max_sims", "lambda",
/// "uniform_w", "lcb_kappa", "kernel", "refit_every", "checkpoint_every",
/// "async_slot_rotation", "on_eval_failure" (discard|penalize),
/// "eval_failure_quantile", "sobol_candidates", "random_candidates",
/// "refine_evals", "trainer_max_iters", "trainer_restarts". An unknown
/// key is an error (a typo would otherwise silently change the proposal
/// stream). Throws easybo::Error on malformed input; the result is
/// validate()d.
SessionSpec parse_session_config(const std::string& json_text);

/// Serializes \p config + \p bounds to the wire object parse reads back.
/// parse(serialize(spec)) reproduces the spec exactly — the round trip
/// the load generator relies on for bit-identical parity runs. Throws
/// easybo::Error when the config uses a knob the wire format cannot
/// carry (a non-default value of anything not listed above).
std::string session_config_json(const bo::BoConfig& config,
                                const opt::Bounds& bounds);

}  // namespace easybo::serve
