#include "serve/host.h"

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <utility>

#include "common/error.h"
#include "io/journal.h"
#include "io/json.h"

namespace easybo::serve {

namespace {

/// Splits off the first space-delimited token; advances \p rest past the
/// separating spaces. Empty token at end of line.
std::string next_token(std::string_view& rest) {
  std::size_t start = 0;
  while (start < rest.size() && rest[start] == ' ') ++start;
  std::size_t end = start;
  while (end < rest.size() && rest[end] != ' ') ++end;
  std::string token(rest.substr(start, end - start));
  rest.remove_prefix(end);
  return token;
}

std::string_view trim_leading(std::string_view s) {
  while (!s.empty() && s.front() == ' ') s.remove_prefix(1);
  return s;
}

/// Replies must be exactly one line; error messages are arbitrary what()
/// strings, so fold any newline into a space.
std::string one_line(std::string s) {
  for (char& c : s) {
    if (c == '\n' || c == '\r') c = ' ';
  }
  return s;
}

double parse_double_token(const std::string& token, const char* what) {
  char* end = nullptr;
  errno = 0;
  const double v = std::strtod(token.c_str(), &end);
  if (token.empty() || end != token.c_str() + token.size()) {
    throw Error(std::string("expected a number for ") + what + ", got \"" +
                token + "\"");
  }
  return v;
}

std::size_t parse_tag_token(const std::string& token) {
  if (token.empty() ||
      token.find_first_not_of("0123456789") != std::string::npos) {
    throw Error("expected a non-negative integer tag, got \"" + token +
                "\"");
  }
  return static_cast<std::size_t>(io::parse_u64(token));
}

std::string suggestion_json(const bo::Suggestion& s) {
  std::string out = "{\"tag\":" + std::to_string(s.tag) + ",\"x\":[";
  for (std::size_t i = 0; i < s.x.size(); ++i) {
    if (i != 0) out += ",";
    out += io::json_number(s.x[i]);
  }
  out += "],\"is_init\":";
  out += s.is_init ? "true" : "false";
  return out + "}";
}

}  // namespace

bool valid_session_name(const std::string& name) {
  if (name.empty() || name.size() > 128) return false;
  if (name.front() == '.' || name.front() == '-') return false;
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '.' || c == '_' ||
                    c == '-';
    if (!ok) return false;
  }
  return true;
}

SessionHost::SessionHost(std::string state_dir, std::size_t max_live)
    : state_dir_(std::move(state_dir)), max_live_(max_live) {
  EASYBO_REQUIRE(!state_dir_.empty(), "SessionHost: empty state directory");
  EASYBO_REQUIRE(max_live_ > 0, "SessionHost: max_live must be positive");
  std::error_code ec;
  std::filesystem::create_directories(state_dir_, ec);
  if (ec) {
    throw Error("SessionHost: cannot create state directory " + state_dir_ +
                ": " + ec.message());
  }
}

std::string SessionHost::config_path(const std::string& name) const {
  return state_dir_ + "/" + name + ".config";
}

std::string SessionHost::checkpoint_base(const std::string& name) const {
  return state_dir_ + "/" + name;
}

void SessionHost::touch(const std::string& name) {
  auto it = live_.find(name);
  lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
}

Session& SessionHost::adopt(std::unique_ptr<Session> session) {
  const std::string name = session->name();
  lru_.push_front(name);
  Live entry{std::move(session), lru_.begin()};
  Session& ref = *entry.session;
  live_.insert_or_assign(name, std::move(entry));
  // Evict beyond the cap, least-recently-used first. Sessions snapshot
  // after every mutation, so dropping the object loses nothing.
  while (live_.size() > max_live_) {
    const std::string victim = lru_.back();
    lru_.pop_back();
    live_.erase(victim);
  }
  return ref;
}

Session& SessionHost::acquire(const std::string& name) {
  if (!valid_session_name(name)) {
    throw Error("invalid session name \"" + name + "\"");
  }
  auto it = live_.find(name);
  if (it != live_.end()) {
    touch(name);
    return *it->second.session;
  }
  // Resume-on-demand: the session was evicted or the host restarted. Its
  // persisted config re-parses to the same fingerprint the checkpoint
  // files carry, so the resume is exact.
  const std::string cpath = config_path(name);
  if (!io::file_exists(cpath)) {
    throw Error("unknown session \"" + name + "\" (no state under " +
                state_dir_ + ")");
  }
  SessionSpec spec = parse_session_config(io::read_file(cpath));
  return adopt(Session::resume(name, std::move(spec),
                               checkpoint_base(name)));
}

std::string SessionHost::handle_line(const std::string& line) {
  try {
    std::string_view rest = line;
    const std::string cmd = next_token(rest);
    if (cmd.empty()) throw Error("empty request");

    if (cmd == "NEW") {
      const std::string name = next_token(rest);
      if (!valid_session_name(name)) {
        throw Error("invalid session name \"" + name + "\"");
      }
      if (live_.count(name) != 0) {
        // Already live: NEW is idempotent (a reconnecting client need not
        // track whether its earlier NEW arrived); the provided config is
        // ignored in favour of the one the session runs with.
        touch(name);
        return "OK resumed " + name;
      }
      if (io::file_exists(config_path(name))) {
        // Known but not live: re-open from the persisted config. The
        // provided config is ignored — honouring a different one would
        // splice proposal streams, which resume refuses anyway.
        acquire(name);
        return "OK resumed " + name;
      }
      const std::string config_json{trim_leading(rest)};
      if (config_json.empty()) {
        throw Error("NEW " + name + ": missing config JSON");
      }
      // Parse first: nothing is persisted for a config that does not
      // validate.
      SessionSpec spec = parse_session_config(config_json);
      io::atomic_write_file(config_path(name), config_json);
      adopt(Session::create(name, std::move(spec), checkpoint_base(name)));
      return "OK created " + name;
    }

    if (cmd == "SUGGEST") {
      const std::string name = next_token(rest);
      if (!trim_leading(rest).empty()) {
        throw Error("SUGGEST takes only a session name");
      }
      Session& s = acquire(name);
      return "OK " + suggestion_json(s.suggest());
    }

    if (cmd == "OBSERVE") {
      const std::string name = next_token(rest);
      const std::size_t tag = parse_tag_token(next_token(rest));
      const std::string value = next_token(rest);
      Session& s = acquire(name);
      SessionObserved ob;
      if (value == "fail") {
        const std::string status = next_token(rest);
        const std::string detail{trim_leading(rest)};
        ob = s.observe_failure(tag, status, detail);
      } else {
        if (!trim_leading(rest).empty()) {
          throw Error("OBSERVE: trailing input after the observed value");
        }
        ob = s.observe_ok(tag, parse_double_token(value, "the observation"));
      }
      return std::string("OK {\"action\":\"") + ob.action + "\"}";
    }

    if (cmd == "STATUS") {
      const std::string name = next_token(rest);
      if (!trim_leading(rest).empty()) {
        throw Error("STATUS takes only a session name");
      }
      return "OK " + acquire(name).status_json();
    }

    if (cmd == "CLOSE") {
      const std::string name = next_token(rest);
      if (!valid_session_name(name)) {
        throw Error("invalid session name \"" + name + "\"");
      }
      auto it = live_.find(name);
      if (it != live_.end()) {
        lru_.erase(it->second.lru_pos);
        live_.erase(it);
        return "OK closed " + name;
      }
      if (io::file_exists(config_path(name))) return "OK closed " + name;
      throw Error("unknown session \"" + name + "\"");
    }

    throw Error("unknown command \"" + cmd +
                "\" (expected NEW|SUGGEST|OBSERVE|STATUS|CLOSE)");
  } catch (const std::exception& e) {
    return one_line(std::string("ERR ") + e.what());
  }
}

}  // namespace easybo::serve
