#include "serve/host.h"

#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <utility>

#include "bo/checkpoint.h"
#include "common/error.h"
#include "io/journal.h"
#include "io/json.h"

namespace easybo::serve {

namespace {

/// Splits off the first space-delimited token; advances \p rest past the
/// separating spaces. Empty token at end of line.
std::string next_token(std::string_view& rest) {
  std::size_t start = 0;
  while (start < rest.size() && rest[start] == ' ') ++start;
  std::size_t end = start;
  while (end < rest.size() && rest[end] != ' ') ++end;
  std::string token(rest.substr(start, end - start));
  rest.remove_prefix(end);
  return token;
}

std::string_view trim_leading(std::string_view s) {
  while (!s.empty() && s.front() == ' ') s.remove_prefix(1);
  return s;
}

/// Replies must be exactly one line; error messages are arbitrary what()
/// strings, so fold any newline into a space.
std::string one_line(std::string s) {
  for (char& c : s) {
    if (c == '\n' || c == '\r') c = ' ';
  }
  return s;
}

double parse_double_token(const std::string& token, const char* what) {
  char* end = nullptr;
  errno = 0;
  const double v = std::strtod(token.c_str(), &end);
  if (token.empty() || end != token.c_str() + token.size()) {
    throw Error(std::string("expected a number for ") + what + ", got \"" +
                token + "\"");
  }
  // strtod happily parses "inf" and "nan"; neither is an observation a
  // model can absorb (clients report failures via the fail form).
  if (!std::isfinite(v)) {
    throw Error(std::string("expected a finite number for ") + what +
                ", got \"" + token + "\"");
  }
  return v;
}

std::size_t parse_tag_token(const std::string& token) {
  if (token.empty() ||
      token.find_first_not_of("0123456789") != std::string::npos) {
    throw Error("expected a non-negative integer tag, got \"" + token +
                "\"");
  }
  return static_cast<std::size_t>(io::parse_u64(token));
}

std::string suggestion_json(const bo::Suggestion& s) {
  std::string out = "{\"tag\":" + std::to_string(s.tag) + ",\"x\":[";
  for (std::size_t i = 0; i < s.x.size(); ++i) {
    if (i != 0) out += ",";
    out += io::json_number(s.x[i]);
  }
  out += "],\"is_init\":";
  out += s.is_init ? "true" : "false";
  return out + "}";
}

bool has_control_bytes(const std::string& line) {
  for (const char c : line) {
    if (static_cast<unsigned char>(c) < 0x20) return true;
  }
  return false;
}

std::string err_quarantined(const std::string& name,
                            const std::string& reason) {
  return one_line("ERR quarantined " + name + ": " + reason +
                  " (CLOSE to reopen after repair)");
}

/// RAII in-flight accounting so every exit path, including throws,
/// decrements.
class InflightGuard {
 public:
  explicit InflightGuard(std::atomic<std::size_t>& n) : n_(n) {
    count = n_.fetch_add(1, std::memory_order_relaxed) + 1;
  }
  ~InflightGuard() { n_.fetch_sub(1, std::memory_order_relaxed); }
  InflightGuard(const InflightGuard&) = delete;
  InflightGuard& operator=(const InflightGuard&) = delete;
  std::size_t count = 0;  ///< in-flight total including this request

 private:
  std::atomic<std::size_t>& n_;
};

}  // namespace

bool valid_session_name(const std::string& name) {
  if (name.empty() || name.size() > 128) return false;
  if (name.front() == '.' || name.front() == '-') return false;
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '.' || c == '_' ||
                    c == '-';
    if (!ok) return false;
  }
  return true;
}

SessionHost::SessionHost(std::string state_dir, std::size_t max_live,
                         HostLimits limits)
    : state_dir_(std::move(state_dir)), max_live_(max_live),
      limits_(limits) {
  EASYBO_REQUIRE(!state_dir_.empty(), "SessionHost: empty state directory");
  EASYBO_REQUIRE(max_live_ > 0, "SessionHost: max_live must be positive");
  EASYBO_REQUIRE(limits_.max_inflight > 0,
                 "SessionHost: max_inflight must be positive");
  std::error_code ec;
  std::filesystem::create_directories(state_dir_, ec);
  if (ec) {
    throw Error("SessionHost: cannot create state directory " + state_dir_ +
                ": " + ec.message());
  }
}

std::string SessionHost::config_path(const std::string& name) const {
  return state_dir_ + "/" + name + ".config";
}

std::string SessionHost::checkpoint_base(const std::string& name) const {
  return state_dir_ + "/" + name;
}

std::size_t SessionHost::live_count() const {
  std::lock_guard<std::mutex> lk(table_mutex_);
  return lru_.size();
}

bool SessionHost::is_live(const std::string& name) const {
  std::lock_guard<std::mutex> lk(table_mutex_);
  const auto it = slots_.find(name);
  return it != slots_.end() && it->second->in_lru;
}

bool SessionHost::is_quarantined(const std::string& name) const {
  std::shared_ptr<Slot> slot;
  {
    std::lock_guard<std::mutex> lk(table_mutex_);
    const auto it = slots_.find(name);
    if (it == slots_.end()) return false;
    slot = it->second;
  }
  std::lock_guard<std::mutex> lk(slot->mutex);
  return slot->quarantined;
}

std::string SessionHost::health_json() const {
  std::size_t live = 0;
  {
    std::lock_guard<std::mutex> lk(table_mutex_);
    live = lru_.size();
  }
  const std::size_t quarantined =
      quarantine_gauge_.load(std::memory_order_relaxed);
  std::string s = "{";
  auto put = [&s](const char* key, const std::string& value) {
    if (s.size() > 1) s += ",";
    s += std::string("\"") + key + "\":" + value;
  };
  put("sessions_live", std::to_string(live));
  put("quarantined", std::to_string(quarantined));
  put("inflight",
      std::to_string(inflight_.load(std::memory_order_relaxed)));
  put("requests",
      std::to_string(requests_.load(std::memory_order_relaxed)));
  put("shed", std::to_string(shed_.load(std::memory_order_relaxed)));
  put("io_faults",
      std::to_string(io_faults_.load(std::memory_order_relaxed)));
  put("max_live", std::to_string(max_live_));
  put("max_inflight", std::to_string(limits_.max_inflight));
  put("storage", quarantined > 0 ? "\"degraded\"" : "\"ok\"");
  // The stream's own mutexes are held only for snapshot copies, so this
  // stays within the health probe's never-blocks-on-a-session contract.
  obs::StreamSink* stream = stream_.load(std::memory_order_acquire);
  if (stream != nullptr) put("stream", stream->stats_json());
  return s + "}";
}

void SessionHost::note_io_fault() {
  io_faults_.fetch_add(1, std::memory_order_relaxed);
  obs::count(trace(), "serve.io_faults", 1);
}

void SessionHost::evict_locked(const Slot* keep, std::size_t target) {
  if (lru_.empty() || lru_.size() <= target) return;
  auto it = std::prev(lru_.end());
  while (true) {
    const bool at_begin = it == lru_.begin();
    const auto cur = it;
    if (!at_begin) --it;
    Slot& victim = *slots_.at(*cur);
    if (&victim != keep) {
      std::unique_lock<std::mutex> vl(victim.mutex, std::try_to_lock);
      // A victim another thread is mid-command on is skipped, never
      // waited on — blocking here would hold the table lock across that
      // command's model math and disk I/O.
      if (vl.owns_lock()) {
        victim.session.reset();
        victim.in_lru = false;
        lru_.erase(cur);
        if (lru_.size() <= target) return;
      }
    }
    if (at_begin) return;
  }
}

std::shared_ptr<SessionHost::Slot> SessionHost::obtain_slot(
    const std::string& name, bool create_missing) {
  {
    std::lock_guard<std::mutex> lk(table_mutex_);
    const auto it = slots_.find(name);
    if (it != slots_.end()) {
      if (!it->second->in_lru) {
        evict_locked(it->second.get(), max_live_ - 1);
      }
      return it->second;
    }
  }
  if (!create_missing && !io::file_exists(config_path(name))) {
    // No slot and no on-disk state: refuse without creating a slot, so
    // the table stays bounded by the set of real sessions no matter how
    // many bogus names a client probes.
    throw Error("unknown session \"" + name + "\" (no state under " +
                state_dir_ + ")");
  }
  std::lock_guard<std::mutex> lk(table_mutex_);
  auto [it, inserted] = slots_.try_emplace(name);
  if (inserted) it->second = std::make_shared<Slot>();
  if (!it->second->in_lru) {
    evict_locked(it->second.get(), max_live_ - 1);
  }
  return it->second;
}

void SessionHost::mark_used(const std::string& name, Slot& slot) {
  std::lock_guard<std::mutex> lk(table_mutex_);
  if (slot.in_lru) {
    lru_.splice(lru_.begin(), lru_, slot.lru_pos);
  } else {
    lru_.push_front(name);
    slot.lru_pos = lru_.begin();
    slot.in_lru = true;
  }
  // Concurrent loads can race past the pre-load eviction (each sees room
  // before any has taken it), so trim again after the fact. keep = this
  // slot: besides being the most recent, its mutex is held by the
  // caller and self-try_lock is undefined.
  evict_locked(&slot, max_live_);
}

void SessionHost::mark_unloaded(const std::string& /*name*/, Slot& slot) {
  std::lock_guard<std::mutex> lk(table_mutex_);
  if (slot.in_lru) {
    lru_.erase(slot.lru_pos);
    slot.in_lru = false;
  }
}

void SessionHost::load_locked(const std::string& name, Slot& slot) {
  // Resume-on-demand: the session was evicted or the host restarted. Its
  // persisted config re-parses to the same fingerprint the checkpoint
  // files carry, so the resume is exact.
  const std::string cpath = config_path(name);
  if (!io::file_exists(cpath)) {
    throw Error("unknown session \"" + name + "\" (no state under " +
                state_dir_ + ")");
  }
  SessionSpec spec = parse_session_config(io::read_file(cpath));
  try {
    if (!io::file_exists(bo::journal_file(checkpoint_base(name)))) {
      // The config was persisted but the journal never came to be: a
      // crash (or injected fault) inside a previous NEW before anything
      // beyond the config reached disk. Nothing was ever observable, so
      // re-creating fresh is exact.
      slot.session =
          Session::create(name, std::move(spec), checkpoint_base(name));
    } else {
      slot.session =
          Session::resume(name, std::move(spec), checkpoint_base(name));
    }
  } catch (const io::CheckpointError&) {
    note_io_fault();
    throw;  // verbatim: resume refusals carry their own precise message
  }
  slot.session->set_trace(trace());
}

void SessionHost::quarantine_locked(const std::string& name, Slot& slot,
                                    const std::string& reason) {
  slot.session.reset();
  mark_unloaded(name, slot);
  slot.quarantined = true;
  slot.quarantine_reason = one_line(reason);
  quarantine_gauge_.fetch_add(1, std::memory_order_relaxed);
  obs::count(trace(), "serve.quarantined", 1);
}

std::string SessionHost::handle_line(const std::string& line) {
  requests_.fetch_add(1, std::memory_order_relaxed);
  if (line.size() > limits_.max_line_bytes) {
    return "ERR request line exceeds " +
           std::to_string(limits_.max_line_bytes) + " bytes";
  }
  if (has_control_bytes(line)) {
    return "ERR request contains control bytes";
  }
  {
    // The bare-STATUS health probe answers even while the host is
    // saturated: no shedding, no per-session lock, no disk.
    std::string_view peek = line;
    if (next_token(peek) == "STATUS" && trim_leading(peek).empty()) {
      return "OK " + health_json();
    }
  }
  InflightGuard inflight(inflight_);
  if (inflight.count > limits_.max_inflight) {
    shed_.fetch_add(1, std::memory_order_relaxed);
    obs::count(trace(), "serve.shed", 1);
    return "ERR busy (" + std::to_string(inflight.count) +
           " requests in flight, limit " +
           std::to_string(limits_.max_inflight) + "; retry)";
  }
  try {
    return dispatch(line);
  } catch (const std::exception& e) {
    return one_line(std::string("ERR ") + e.what());
  }
}

std::string SessionHost::dispatch(const std::string& line) {
  std::string_view rest = line;
  const std::string cmd = next_token(rest);
  if (cmd.empty()) throw Error("empty request");

  if (cmd == "NEW") {
    const std::string name = next_token(rest);
    if (!valid_session_name(name)) {
      throw Error("invalid session name \"" + name + "\"");
    }
    const std::string config_json{trim_leading(rest)};
    std::shared_ptr<Slot> slot = obtain_slot(name, /*create_missing=*/true);
    std::lock_guard<std::mutex> lk(slot->mutex);
    if (slot->quarantined) {
      return err_quarantined(name, slot->quarantine_reason);
    }
    if (slot->session != nullptr) {
      // Already live: NEW is idempotent (a reconnecting client need not
      // track whether its earlier NEW arrived); the provided config is
      // ignored in favour of the one the session runs with.
      mark_used(name, *slot);
      return "OK resumed " + name;
    }
    if (io::file_exists(config_path(name))) {
      // Known but not live: re-open from the persisted config. The
      // provided config is ignored — honouring a different one would
      // splice proposal streams, which resume refuses anyway.
      load_locked(name, *slot);
      mark_used(name, *slot);
      return "OK resumed " + name;
    }
    if (config_json.empty()) {
      throw Error("NEW " + name + ": missing config JSON");
    }
    // Parse first: nothing is persisted for a config that does not
    // validate.
    SessionSpec spec = parse_session_config(config_json);
    try {
      io::atomic_write_file(config_path(name), config_json);
    } catch (const io::CheckpointError&) {
      // A failed (possibly torn) config write rolls back to "no such
      // session" — a half-written config must never be what a later
      // command resumes from. Plain ERR, no quarantine: retry NEW.
      note_io_fault();
      std::remove(config_path(name).c_str());
      throw;
    }
    try {
      slot->session =
          Session::create(name, std::move(spec), checkpoint_base(name));
    } catch (const io::CheckpointError&) {
      // The config is durable, so nothing irreversible happened:
      // whatever subset of the journal/snapshot exists, a retried NEW
      // resumes or re-creates from it. Plain ERR, no quarantine.
      note_io_fault();
      slot->session.reset();
      throw;
    }
    slot->session->set_trace(trace());
    mark_used(name, *slot);
    return "OK created " + name;
  }

  if (cmd == "SUGGEST") {
    const std::string name = next_token(rest);
    if (!trim_leading(rest).empty()) {
      throw Error("SUGGEST takes only a session name");
    }
    if (!valid_session_name(name)) {
      throw Error("invalid session name \"" + name + "\"");
    }
    std::shared_ptr<Slot> slot = obtain_slot(name, /*create_missing=*/false);
    std::lock_guard<std::mutex> lk(slot->mutex);
    if (slot->quarantined) {
      return err_quarantined(name, slot->quarantine_reason);
    }
    if (slot->session == nullptr) load_locked(name, *slot);
    mark_used(name, *slot);
    try {
      return "OK " + suggestion_json(slot->session->suggest());
    } catch (const io::CheckpointError& e) {
      // The suggestion could not be made durable, and its tag must never
      // reach a client it cannot survive for. Dropping the in-memory
      // object rolls the suggest back (the files still hold the previous
      // state); quarantine keeps later commands from churning the
      // damaged storage.
      note_io_fault();
      quarantine_locked(name, *slot, e.what());
      return one_line("ERR storage " + name + ": " + std::string(e.what()) +
                      " (session quarantined; CLOSE to reopen after repair)");
    }
  }

  if (cmd == "OBSERVE") {
    const std::string name = next_token(rest);
    const std::string tag_token = next_token(rest);
    const std::string value = next_token(rest);
    std::string fail_status;
    std::string fail_detail;
    const bool is_failure = value == "fail";
    if (is_failure) {
      fail_status = next_token(rest);
      fail_detail = std::string(trim_leading(rest));
    } else if (!trim_leading(rest).empty()) {
      throw Error("OBSERVE: trailing input after the observed value");
    }
    // Parse everything before touching the session: a malformed request
    // must leave the host exactly as it was.
    const std::size_t tag = parse_tag_token(tag_token);
    const double y =
        is_failure ? 0.0 : parse_double_token(value, "the observation");
    if (!valid_session_name(name)) {
      throw Error("invalid session name \"" + name + "\"");
    }
    std::shared_ptr<Slot> slot = obtain_slot(name, /*create_missing=*/false);
    std::lock_guard<std::mutex> lk(slot->mutex);
    if (slot->quarantined) {
      return err_quarantined(name, slot->quarantine_reason);
    }
    if (slot->session == nullptr) load_locked(name, *slot);
    mark_used(name, *slot);
    SessionObserved ob;
    try {
      ob = is_failure
               ? slot->session->observe_failure(tag, fail_status, fail_detail)
               : slot->session->observe_ok(tag, y);
    } catch (const io::CheckpointError& e) {
      // The journal append failed, so nothing of this observe is durable
      // — but the in-memory core consumed the pending tag before the
      // append, so the object can no longer be trusted. Drop it (disk
      // still holds the pre-observe state) and quarantine the name.
      note_io_fault();
      quarantine_locked(name, *slot, e.what());
      return one_line("ERR storage " + name + ": " + std::string(e.what()) +
                      " (session quarantined; CLOSE to reopen after repair)");
    }
    if (ob.snapshot_failed) {
      // Journaled, so the observe is committed and the reply stays OK;
      // the stale snapshot only widens the tail the next resume replays.
      note_io_fault();
    }
    return std::string("OK {\"action\":\"") + ob.action + "\"}";
  }

  if (cmd == "STATUS") {
    const std::string name = next_token(rest);
    if (!trim_leading(rest).empty()) {
      throw Error("STATUS takes only a session name");
    }
    if (!valid_session_name(name)) {
      throw Error("invalid session name \"" + name + "\"");
    }
    std::shared_ptr<Slot> slot = obtain_slot(name, /*create_missing=*/false);
    std::lock_guard<std::mutex> lk(slot->mutex);
    if (slot->quarantined) {
      // Quarantine status is served from memory — an operator probing a
      // degraded session must not trigger more I/O against bad storage.
      return "OK {\"name\":" + io::json_quote(name) +
             ",\"quarantined\":true,\"reason\":" +
             io::json_quote(slot->quarantine_reason) + "}";
    }
    if (slot->session == nullptr) load_locked(name, *slot);
    mark_used(name, *slot);
    return "OK " + slot->session->status_json();
  }

  if (cmd == "CLOSE") {
    const std::string name = next_token(rest);
    if (!valid_session_name(name)) {
      throw Error("invalid session name \"" + name + "\"");
    }
    std::shared_ptr<Slot> slot;
    {
      std::lock_guard<std::mutex> lk(table_mutex_);
      const auto it = slots_.find(name);
      if (it != slots_.end()) slot = it->second;
    }
    if (slot == nullptr) {
      if (io::file_exists(config_path(name))) return "OK closed " + name;
      throw Error("unknown session \"" + name + "\"");
    }
    std::lock_guard<std::mutex> lk(slot->mutex);
    const bool existed = slot->session != nullptr || slot->quarantined ||
                         io::file_exists(config_path(name));
    slot->session.reset();
    mark_unloaded(name, *slot);
    if (slot->quarantined) {
      // CLOSE is the operator's "I repaired the storage" acknowledgment:
      // the next command on this name resumes from the files afresh.
      slot->quarantined = false;
      slot->quarantine_reason.clear();
      quarantine_gauge_.fetch_sub(1, std::memory_order_relaxed);
    }
    if (!existed) throw Error("unknown session \"" + name + "\"");
    return "OK closed " + name;
  }

  throw Error("unknown command \"" + cmd +
              "\" (expected NEW|SUGGEST|OBSERVE|STATUS|CLOSE)");
}

}  // namespace easybo::serve
