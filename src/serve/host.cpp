#include "serve/host.h"

#include <algorithm>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <thread>
#include <utility>

#include "bo/checkpoint.h"
#include "common/error.h"
#include "io/journal.h"
#include "io/json.h"

namespace easybo::serve {

namespace {

/// Splits off the first space-delimited token; advances \p rest past the
/// separating spaces. Empty token at end of line.
std::string next_token(std::string_view& rest) {
  std::size_t start = 0;
  while (start < rest.size() && rest[start] == ' ') ++start;
  std::size_t end = start;
  while (end < rest.size() && rest[end] != ' ') ++end;
  std::string token(rest.substr(start, end - start));
  rest.remove_prefix(end);
  return token;
}

std::string_view trim_leading(std::string_view s) {
  while (!s.empty() && s.front() == ' ') s.remove_prefix(1);
  return s;
}

/// Replies must be exactly one line; error messages are arbitrary what()
/// strings, so fold any newline into a space.
std::string one_line(std::string s) {
  for (char& c : s) {
    if (c == '\n' || c == '\r') c = ' ';
  }
  return s;
}

double parse_double_token(const std::string& token, const char* what) {
  char* end = nullptr;
  errno = 0;
  const double v = std::strtod(token.c_str(), &end);
  if (token.empty() || end != token.c_str() + token.size()) {
    throw Error(std::string("expected a number for ") + what + ", got \"" +
                token + "\"");
  }
  // strtod happily parses "inf" and "nan"; neither is an observation a
  // model can absorb (clients report failures via the fail form).
  if (!std::isfinite(v)) {
    throw Error(std::string("expected a finite number for ") + what +
                ", got \"" + token + "\"");
  }
  return v;
}

std::size_t parse_tag_token(const std::string& token) {
  if (token.empty() ||
      token.find_first_not_of("0123456789") != std::string::npos) {
    throw Error("expected a non-negative integer tag, got \"" + token +
                "\"");
  }
  return static_cast<std::size_t>(io::parse_u64(token));
}

std::string suggestion_json(const bo::Suggestion& s) {
  std::string out = "{\"tag\":" + std::to_string(s.tag) + ",\"x\":[";
  for (std::size_t i = 0; i < s.x.size(); ++i) {
    if (i != 0) out += ",";
    out += io::json_number(s.x[i]);
  }
  out += "],\"is_init\":";
  out += s.is_init ? "true" : "false";
  return out + "}";
}

bool has_control_bytes(const std::string& line) {
  for (const char c : line) {
    if (static_cast<unsigned char>(c) < 0x20) return true;
  }
  return false;
}

std::string err_quarantined(const std::string& name,
                            const std::string& reason) {
  return one_line("ERR quarantined " + name + ": " + reason +
                  " (CLOSE to reopen after repair)");
}

std::string err_runaway(const std::string& name, std::size_t hint_ms) {
  return one_line("ERR busy " + name +
                  ": a runaway request is still executing (watchdog "
                  "tripped; retry in " +
                  std::to_string(hint_ms) + "ms)");
}

/// Milliseconds as a wire-friendly integer string.
std::string ms_str(double seconds) {
  return std::to_string(
      static_cast<long long>(std::llround(seconds * 1000.0)));
}

std::chrono::steady_clock::duration steady_dur(double seconds) {
  return std::chrono::duration_cast<std::chrono::steady_clock::duration>(
      std::chrono::duration<double>(std::max(0.0, seconds)));
}

/// Deadline-bounded mutex acquisition. Not timed_mutex::try_lock_until:
/// on glibc that lowers to pthread_mutex_clocklock, which TSan's
/// interceptors do not cover, so a successful timed acquire is invisible
/// to the race detector and the eventual unlock reports as unpaired.
/// Polling plain try_lock (fully instrumented) at a 1 ms grain bounds
/// the wait just as hard, and the grain is noise against the
/// hundreds-of-ms deadlines this serves.
bool lock_until(std::unique_lock<std::timed_mutex>& lk,
                std::chrono::steady_clock::time_point deadline) {
  for (;;) {
    if (lk.try_lock()) return true;
    if (std::chrono::steady_clock::now() >= deadline) return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
}

/// The debug slowdown seam's sleep: cooperative (polls the token every
/// few milliseconds, so a deadline cuts it like real model math) unless
/// ignore_stop simulates a computation with no safe checkpoints.
void injected_sleep(const SessionHost::DebugSlowdown& d,
                    const common::StopToken* stop) {
  const auto end = std::chrono::steady_clock::now() + steady_dur(d.sleep_s);
  for (;;) {
    if (!d.ignore_stop && stop != nullptr) stop->check("injected slowdown");
    const auto now = std::chrono::steady_clock::now();
    if (now >= end) break;
    const auto slice = std::min<std::chrono::steady_clock::duration>(
        std::chrono::milliseconds(5), end - now);
    std::this_thread::sleep_for(slice);
  }
  if (!d.ignore_stop && stop != nullptr) stop->check("injected slowdown");
}

/// RAII in-flight accounting so every exit path, including throws,
/// decrements.
class InflightGuard {
 public:
  explicit InflightGuard(std::atomic<std::size_t>& n) : n_(n) {
    count = n_.fetch_add(1, std::memory_order_relaxed) + 1;
  }
  ~InflightGuard() { n_.fetch_sub(1, std::memory_order_relaxed); }
  InflightGuard(const InflightGuard&) = delete;
  InflightGuard& operator=(const InflightGuard&) = delete;
  std::size_t count = 0;  ///< in-flight total including this request

 private:
  std::atomic<std::size_t>& n_;
};

}  // namespace

bool valid_session_name(const std::string& name) {
  if (name.empty() || name.size() > 128) return false;
  if (name.front() == '.' || name.front() == '-') return false;
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '.' || c == '_' ||
                    c == '-';
    if (!ok) return false;
  }
  return true;
}

SessionHost::SessionHost(std::string state_dir, std::size_t max_live,
                         HostLimits limits)
    : state_dir_(std::move(state_dir)), max_live_(max_live),
      limits_(limits) {
  EASYBO_REQUIRE(!state_dir_.empty(), "SessionHost: empty state directory");
  EASYBO_REQUIRE(max_live_ > 0, "SessionHost: max_live must be positive");
  EASYBO_REQUIRE(limits_.max_inflight > 0,
                 "SessionHost: max_inflight must be positive");
  EASYBO_REQUIRE(limits_.request_deadline_s >= 0.0 &&
                     limits_.queue_wait_s >= 0.0 &&
                     limits_.watchdog_grace_s >= 0.0,
                 "SessionHost: deadline knobs must be non-negative");
  std::error_code ec;
  std::filesystem::create_directories(state_dir_, ec);
  if (ec) {
    throw Error("SessionHost: cannot create state directory " + state_dir_ +
                ": " + ec.message());
  }
  if (limits_.serve_workers > 0) {
    WorkQueueOptions opt;
    opt.workers = limits_.serve_workers;
    opt.capacity = limits_.queue_capacity;
    queue_ = std::make_unique<WorkQueue>(opt);
  }
}

SessionHost::~SessionHost() {
  // Drain and join the workers while every member they touch is intact
  // (queue_ is also the last-declared member, so this is belt and
  // braces).
  queue_.reset();
}

std::string SessionHost::config_path(const std::string& name) const {
  return state_dir_ + "/" + name + ".config";
}

std::string SessionHost::checkpoint_base(const std::string& name) const {
  return state_dir_ + "/" + name;
}

std::size_t SessionHost::live_count() const {
  std::lock_guard<std::mutex> lk(table_mutex_);
  return lru_.size();
}

bool SessionHost::is_live(const std::string& name) const {
  std::lock_guard<std::mutex> lk(table_mutex_);
  const auto it = slots_.find(name);
  return it != slots_.end() && it->second->in_lru;
}

bool SessionHost::is_quarantined(const std::string& name) const {
  std::shared_ptr<Slot> slot;
  {
    std::lock_guard<std::mutex> lk(table_mutex_);
    const auto it = slots_.find(name);
    if (it == slots_.end()) return false;
    slot = it->second;
  }
  std::lock_guard<std::timed_mutex> lk(slot->mutex);
  return slot->quarantined;
}

void SessionHost::set_debug_slowdown(DebugSlowdown d) {
  std::lock_guard<std::mutex> lk(slowdown_mutex_);
  slowdown_ = std::move(d);
}

std::size_t SessionHost::queue_depth() const {
  return queue_ != nullptr ? queue_->depth() : 0;
}

std::size_t SessionHost::retry_hint_ms() const {
  double wait_p90 = 0.0;
  double exec_cema = 0.0;
  std::uint64_t samples = 0;
  {
    std::lock_guard<std::mutex> lk(stats_mutex_);
    samples = wait_stats_.count() + exec_stats_.count();
    wait_p90 = wait_stats_.p90();
    exec_cema = exec_stats_.cema();
  }
  if (samples == 0) return 100;
  const double hint_ms = (2.0 * wait_p90 + exec_cema) * 1000.0;
  return static_cast<std::size_t>(
      std::lround(std::min(30000.0, std::max(25.0, hint_ms))));
}

std::string SessionHost::health_json() const {
  std::size_t live = 0;
  {
    std::lock_guard<std::mutex> lk(table_mutex_);
    live = lru_.size();
  }
  const std::size_t quarantined =
      quarantine_gauge_.load(std::memory_order_relaxed);
  std::string s = "{";
  auto put = [&s](const char* key, const std::string& value) {
    if (s.size() > 1) s += ",";
    s += std::string("\"") + key + "\":" + value;
  };
  put("sessions_live", std::to_string(live));
  put("quarantined", std::to_string(quarantined));
  put("inflight",
      std::to_string(inflight_.load(std::memory_order_relaxed)));
  put("requests",
      std::to_string(requests_.load(std::memory_order_relaxed)));
  put("shed", std::to_string(shed_.load(std::memory_order_relaxed)));
  put("io_faults",
      std::to_string(io_faults_.load(std::memory_order_relaxed)));
  put("deadline_cut",
      std::to_string(deadline_cut_.load(std::memory_order_relaxed)));
  put("queue_shed",
      std::to_string(queue_shed_.load(std::memory_order_relaxed)));
  put("watchdog_trips",
      std::to_string(watchdog_trips_.load(std::memory_order_relaxed)));
  put("max_live", std::to_string(max_live_));
  put("max_inflight", std::to_string(limits_.max_inflight));
  put("workers",
      std::to_string(queue_ != nullptr ? queue_->workers() : 0));
  put("queue_depth", std::to_string(queue_depth()));
  put("retry_hint_ms", std::to_string(retry_hint_ms()));
  if (queue_ != nullptr) {
    // The stats mutex guards plain arithmetic, never a session lock or
    // disk, so this stays within the health probe's contract.
    std::lock_guard<std::mutex> lk(stats_mutex_);
    put("queue_wait", wait_stats_.json());
    put("exec", exec_stats_.json());
  }
  put("storage", quarantined > 0 ? "\"degraded\"" : "\"ok\"");
  // The stream's own mutexes are held only for snapshot copies, so this
  // stays within the health probe's never-blocks-on-a-session contract.
  obs::StreamSink* stream = stream_.load(std::memory_order_acquire);
  if (stream != nullptr) put("stream", stream->stats_json());
  return s + "}";
}

void SessionHost::note_io_fault() {
  io_faults_.fetch_add(1, std::memory_order_relaxed);
  obs::count(trace(), "serve.io_faults", 1);
}

void SessionHost::note_deadline_cut() {
  deadline_cut_.fetch_add(1, std::memory_order_relaxed);
  obs::count(trace(), "serve.deadline_cut", 1);
}

void SessionHost::note_queue_shed() {
  queue_shed_.fetch_add(1, std::memory_order_relaxed);
  obs::count(trace(), "serve.queue_shed", 1);
}

void SessionHost::note_watchdog_trip() {
  watchdog_trips_.fetch_add(1, std::memory_order_relaxed);
  obs::count(trace(), "serve.watchdog_trips", 1);
}

void SessionHost::record_wait(double seconds) {
  std::lock_guard<std::mutex> lk(stats_mutex_);
  wait_stats_.add(seconds);
}

void SessionHost::record_exec(double seconds) {
  std::lock_guard<std::mutex> lk(stats_mutex_);
  exec_stats_.add(seconds);
}

void SessionHost::evict_locked(const Slot* keep, std::size_t target) {
  if (lru_.empty() || lru_.size() <= target) return;
  auto it = std::prev(lru_.end());
  while (true) {
    const bool at_begin = it == lru_.begin();
    const auto cur = it;
    if (!at_begin) --it;
    Slot& victim = *slots_.at(*cur);
    if (&victim != keep) {
      std::unique_lock<std::timed_mutex> vl(victim.mutex, std::try_to_lock);
      // A victim another thread is mid-command on is skipped, never
      // waited on — blocking here would hold the table lock across that
      // command's model math and disk I/O.
      if (vl.owns_lock()) {
        victim.session.reset();
        victim.in_lru = false;
        lru_.erase(cur);
        if (lru_.size() <= target) return;
      }
    }
    if (at_begin) return;
  }
}

std::shared_ptr<SessionHost::Slot> SessionHost::obtain_slot(
    const std::string& name, bool create_missing) {
  {
    std::lock_guard<std::mutex> lk(table_mutex_);
    const auto it = slots_.find(name);
    if (it != slots_.end()) {
      if (!it->second->in_lru) {
        evict_locked(it->second.get(), max_live_ - 1);
      }
      return it->second;
    }
  }
  if (!create_missing && !io::file_exists(config_path(name))) {
    // No slot and no on-disk state: refuse without creating a slot, so
    // the table stays bounded by the set of real sessions no matter how
    // many bogus names a client probes.
    throw Error("unknown session \"" + name + "\" (no state under " +
                state_dir_ + ")");
  }
  std::lock_guard<std::mutex> lk(table_mutex_);
  auto [it, inserted] = slots_.try_emplace(name);
  if (inserted) it->second = std::make_shared<Slot>();
  if (!it->second->in_lru) {
    evict_locked(it->second.get(), max_live_ - 1);
  }
  return it->second;
}

void SessionHost::mark_used(const std::string& name, Slot& slot) {
  std::lock_guard<std::mutex> lk(table_mutex_);
  if (slot.in_lru) {
    lru_.splice(lru_.begin(), lru_, slot.lru_pos);
  } else {
    lru_.push_front(name);
    slot.lru_pos = lru_.begin();
    slot.in_lru = true;
  }
  // Concurrent loads can race past the pre-load eviction (each sees room
  // before any has taken it), so trim again after the fact. keep = this
  // slot: besides being the most recent, its mutex is held by the
  // caller and self-try_lock is undefined.
  evict_locked(&slot, max_live_);
}

void SessionHost::mark_unloaded(const std::string& /*name*/, Slot& slot) {
  std::lock_guard<std::mutex> lk(table_mutex_);
  if (slot.in_lru) {
    lru_.erase(slot.lru_pos);
    slot.in_lru = false;
  }
}

void SessionHost::load_locked(const std::string& name, Slot& slot) {
  // Resume-on-demand: the session was evicted or the host restarted. Its
  // persisted config re-parses to the same fingerprint the checkpoint
  // files carry, so the resume is exact.
  const std::string cpath = config_path(name);
  if (!io::file_exists(cpath)) {
    throw Error("unknown session \"" + name + "\" (no state under " +
                state_dir_ + ")");
  }
  SessionSpec spec = parse_session_config(io::read_file(cpath));
  try {
    if (!io::file_exists(bo::journal_file(checkpoint_base(name)))) {
      // The config was persisted but the journal never came to be: a
      // crash (or injected fault) inside a previous NEW before anything
      // beyond the config reached disk. Nothing was ever observable, so
      // re-creating fresh is exact.
      slot.session =
          Session::create(name, std::move(spec), checkpoint_base(name));
    } else {
      slot.session =
          Session::resume(name, std::move(spec), checkpoint_base(name));
    }
  } catch (const io::CheckpointError&) {
    note_io_fault();
    throw;  // verbatim: resume refusals carry their own precise message
  }
  slot.session->set_trace(trace());
}

void SessionHost::quarantine_locked(const std::string& name, Slot& slot,
                                    const std::string& reason) {
  slot.session.reset();
  mark_unloaded(name, slot);
  slot.quarantined = true;
  slot.quarantine_reason = one_line(reason);
  quarantine_gauge_.fetch_add(1, std::memory_order_relaxed);
  obs::count(trace(), "serve.quarantined", 1);
}

void SessionHost::cache_status_locked(Slot& slot) {
  std::string status = slot.session->status_json();
  std::lock_guard<std::mutex> ml(slot.meta_mutex);
  slot.last_status = std::move(status);
}

void SessionHost::poison(const std::string& name,
                         const std::string& reason) {
  std::shared_ptr<Slot> slot;
  {
    std::lock_guard<std::mutex> lk(table_mutex_);
    const auto it = slots_.find(name);
    if (it == slots_.end()) return;
    slot = it->second;
  }
  {
    std::lock_guard<std::mutex> ml(slot->meta_mutex);
    slot->poison_reason = one_line(reason);
  }
  slot->poisoned.store(true, std::memory_order_release);
}

void SessionHost::watchdog_quarantine(const std::string& name) {
  std::shared_ptr<Slot> slot;
  {
    std::lock_guard<std::mutex> lk(table_mutex_);
    const auto it = slots_.find(name);
    if (it == slots_.end()) return;
    slot = it->second;
  }
  // The runaway closure has returned, so its lock is released; nothing
  // long-running can hold it now.
  std::lock_guard<std::timed_mutex> lk(slot->mutex);
  if (!slot->poisoned.exchange(false, std::memory_order_acq_rel)) {
    return;  // a CLOSE won the race and cleared the poison: nothing to do
  }
  std::string reason;
  {
    std::lock_guard<std::mutex> ml(slot->meta_mutex);
    reason = std::move(slot->poison_reason);
    slot->poison_reason.clear();
  }
  if (reason.empty()) {
    reason = "a request ignored cancellation past the watchdog grace";
  }
  if (!slot->quarantined) quarantine_locked(name, *slot, reason);
}

std::string SessionHost::handle_line(const std::string& line) {
  requests_.fetch_add(1, std::memory_order_relaxed);
  if (line.size() > limits_.max_line_bytes) {
    return "ERR request line exceeds " +
           std::to_string(limits_.max_line_bytes) + " bytes";
  }
  if (has_control_bytes(line)) {
    return "ERR request contains control bytes";
  }
  {
    // The bare-STATUS health probe answers even while the host is
    // saturated: no shedding, no per-session lock, no disk.
    std::string_view peek = line;
    if (next_token(peek) == "STATUS" && trim_leading(peek).empty()) {
      return "OK " + health_json();
    }
  }
  InflightGuard inflight(inflight_);
  if (inflight.count > limits_.max_inflight) {
    shed_.fetch_add(1, std::memory_order_relaxed);
    obs::count(trace(), "serve.shed", 1);
    return "ERR busy (" + std::to_string(inflight.count) +
           " requests in flight, limit " +
           std::to_string(limits_.max_inflight) + "; retry in " +
           std::to_string(retry_hint_ms()) + "ms)";
  }
  try {
    if (queue_ != nullptr) {
      // Pool mode: the two session-mutating commands run on a worker
      // with a deadline; everything else (cheap or administrative) stays
      // on the calling thread. Invalid names fall through for the
      // ordinary parse error.
      std::string_view peek = line;
      const std::string cmd = next_token(peek);
      if (cmd == "SUGGEST" || cmd == "OBSERVE") {
        const std::string name = next_token(peek);
        if (valid_session_name(name)) return run_deadline(line, name);
      }
    }
    return dispatch(line, nullptr);
  } catch (const std::exception& e) {
    return one_line(std::string("ERR ") + e.what());
  }
}

std::string SessionHost::run_deadline(const std::string& line,
                                      const std::string& name) {
  const bool bounded = limits_.request_deadline_s > 0.0;
  const auto deadline = std::chrono::steady_clock::now() +
                        steady_dur(limits_.request_deadline_s);
  common::StopToken token;
  if (bounded) token = common::StopToken::after_deadline(deadline);
  std::shared_ptr<WorkQueue::Task> task = queue_->submit(
      [this, line](const common::StopToken& stop, double queued_seconds) {
        return run_pooled(line, stop, queued_seconds);
      },
      token, [this, name] { watchdog_quarantine(name); });
  if (task == nullptr) {
    note_queue_shed();
    return "ERR busy (admission queue full, " +
           std::to_string(limits_.queue_capacity) + " queued; retry in " +
           std::to_string(retry_hint_ms()) + "ms)";
  }
  if (!bounded) {
    task->wait();
    return task->take_reply();
  }
  const auto grace = steady_dur(limits_.watchdog_grace_s);
  if (task->wait_until(deadline + grace)) return task->take_reply();
  switch (task->abandon()) {
    case WorkQueue::Abandon::Completed:
      // Finished in the race between the timeout and the abandon.
      return task->take_reply();
    case WorkQueue::Abandon::Queued:
      // Never reached a worker within deadline + grace; the worker will
      // discard it unrun, so nothing was attempted, let alone committed.
      note_deadline_cut();
      return one_line("ERR deadline " + name +
                      ": request expired in the admission queue (nothing "
                      "was attempted; retry in " +
                      std::to_string(retry_hint_ms()) + "ms)");
    case WorkQueue::Abandon::Running:
      // The computation ignored its token past the grace period. Poison
      // the slot now (so other commands refuse instead of queueing on
      // the runaway's lock); the quarantine lands when it returns. The
      // pre-commit token check in Session::suggest keeps even this
      // request from committing anything.
      note_watchdog_trip();
      poison(name, "a request ignored cancellation for " +
                       ms_str(limits_.watchdog_grace_s) +
                       "ms past its deadline");
      return one_line("ERR deadline " + name +
                      ": request ignored cancellation past the " +
                      ms_str(limits_.watchdog_grace_s) +
                      "ms watchdog grace (watchdog tripped; session "
                      "quarantined once it completes; retry after CLOSE)");
  }
  return "ERR internal: unreachable abandon state";
}

std::string SessionHost::run_pooled(const std::string& line,
                                    const common::StopToken& stop,
                                    double queued_seconds) {
  record_wait(queued_seconds);
  if (limits_.queue_wait_s > 0.0 && queued_seconds > limits_.queue_wait_s) {
    // The request went stale in the queue; its client has likely given
    // up (or is about to). Shed before spending model math on it.
    note_queue_shed();
    return "ERR busy (queued " + ms_str(queued_seconds) + "ms, past the " +
           ms_str(limits_.queue_wait_s) + "ms queue-wait cap; retry in " +
           std::to_string(retry_hint_ms()) + "ms)";
  }
  const auto begin = std::chrono::steady_clock::now();
  std::string reply;
  try {
    reply = dispatch(line, &stop);
  } catch (const std::exception& e) {
    reply = one_line(std::string("ERR ") + e.what());
  }
  record_exec(std::chrono::duration<double>(
                  std::chrono::steady_clock::now() - begin)
                  .count());
  return reply;
}

std::string SessionHost::dispatch(const std::string& line,
                                  const common::StopToken* stop) {
  std::string_view rest = line;
  const std::string cmd = next_token(rest);
  if (cmd.empty()) throw Error("empty request");

  if (cmd == "NEW") {
    const std::string name = next_token(rest);
    if (!valid_session_name(name)) {
      throw Error("invalid session name \"" + name + "\"");
    }
    const std::string config_json{trim_leading(rest)};
    std::shared_ptr<Slot> slot = obtain_slot(name, /*create_missing=*/true);
    if (slot->poisoned.load(std::memory_order_acquire)) {
      return err_runaway(name, retry_hint_ms());
    }
    std::lock_guard<std::timed_mutex> lk(slot->mutex);
    if (slot->quarantined) {
      return err_quarantined(name, slot->quarantine_reason);
    }
    if (slot->session != nullptr) {
      // Already live: NEW is idempotent (a reconnecting client need not
      // track whether its earlier NEW arrived); the provided config is
      // ignored in favour of the one the session runs with.
      mark_used(name, *slot);
      return "OK resumed " + name;
    }
    if (io::file_exists(config_path(name))) {
      // Known but not live: re-open from the persisted config. The
      // provided config is ignored — honouring a different one would
      // splice proposal streams, which resume refuses anyway.
      load_locked(name, *slot);
      mark_used(name, *slot);
      return "OK resumed " + name;
    }
    if (config_json.empty()) {
      throw Error("NEW " + name + ": missing config JSON");
    }
    // Parse first: nothing is persisted for a config that does not
    // validate.
    SessionSpec spec = parse_session_config(config_json);
    try {
      io::atomic_write_file(config_path(name), config_json);
    } catch (const io::CheckpointError&) {
      // A failed (possibly torn) config write rolls back to "no such
      // session" — a half-written config must never be what a later
      // command resumes from. Plain ERR, no quarantine: retry NEW.
      note_io_fault();
      std::remove(config_path(name).c_str());
      throw;
    }
    try {
      slot->session =
          Session::create(name, std::move(spec), checkpoint_base(name));
    } catch (const io::CheckpointError&) {
      // The config is durable, so nothing irreversible happened:
      // whatever subset of the journal/snapshot exists, a retried NEW
      // resumes or re-creates from it. Plain ERR, no quarantine.
      note_io_fault();
      slot->session.reset();
      throw;
    }
    slot->session->set_trace(trace());
    mark_used(name, *slot);
    return "OK created " + name;
  }

  if (cmd == "SUGGEST") {
    const std::string name = next_token(rest);
    if (!trim_leading(rest).empty()) {
      throw Error("SUGGEST takes only a session name");
    }
    if (!valid_session_name(name)) {
      throw Error("invalid session name \"" + name + "\"");
    }
    std::shared_ptr<Slot> slot = obtain_slot(name, /*create_missing=*/false);
    if (slot->poisoned.load(std::memory_order_acquire)) {
      return err_runaway(name, retry_hint_ms());
    }
    std::unique_lock<std::timed_mutex> lk(slot->mutex, std::defer_lock);
    if (stop != nullptr && stop->has_deadline()) {
      // Bound the lock wait by the request's own deadline: queueing
      // behind a slow holder is time spent exactly like queue wait.
      if (!lock_until(lk, stop->deadline())) {
        note_deadline_cut();
        return one_line("ERR deadline " + name +
                        ": session lock not acquired within the deadline "
                        "(nothing was attempted; retry in " +
                        std::to_string(retry_hint_ms()) + "ms)");
      }
    } else {
      lk.lock();
    }
    if (slot->quarantined) {
      return err_quarantined(name, slot->quarantine_reason);
    }
    if (stop != nullptr && stop->stop_requested()) {
      // Expired while waiting for the lock/queue: refuse before the
      // resume-on-demand I/O, not after.
      note_deadline_cut();
      return one_line("ERR deadline " + name +
                      ": deadline expired before execution began (nothing "
                      "was attempted; retry in " +
                      std::to_string(retry_hint_ms()) + "ms)");
    }
    if (slot->session == nullptr) load_locked(name, *slot);
    mark_used(name, *slot);
    try {
      {
        DebugSlowdown d;
        {
          std::lock_guard<std::mutex> sl(slowdown_mutex_);
          d = slowdown_;
        }
        if (d.session == name && d.sleep_s > 0.0) injected_sleep(d, stop);
      }
      const std::string reply =
          "OK " + suggestion_json(slot->session->suggest(stop));
      cache_status_locked(*slot);
      return reply;
    } catch (const common::Cancelled& e) {
      // The deadline fired at one of the computation's safe checkpoints
      // (or at the pre-commit gate). Nothing was committed: the files
      // still hold the exact pre-suggest state, so dropping the dirty
      // in-memory object IS the rollback — the next command resumes from
      // disk and a retried SUGGEST reproduces the identical proposal.
      slot->session.reset();
      mark_unloaded(name, *slot);
      note_deadline_cut();
      return one_line("ERR deadline " + name + ": " + e.what() +
                      " (state rolled back; retry in " +
                      std::to_string(retry_hint_ms()) + "ms)");
    } catch (const io::CheckpointError& e) {
      // The suggestion could not be made durable, and its tag must never
      // reach a client it cannot survive for. Dropping the in-memory
      // object rolls the suggest back (the files still hold the previous
      // state); quarantine keeps later commands from churning the
      // damaged storage.
      note_io_fault();
      quarantine_locked(name, *slot, e.what());
      return one_line("ERR storage " + name + ": " + std::string(e.what()) +
                      " (session quarantined; CLOSE to reopen after repair)");
    }
  }

  if (cmd == "OBSERVE") {
    const std::string name = next_token(rest);
    const std::string tag_token = next_token(rest);
    const std::string value = next_token(rest);
    std::string fail_status;
    std::string fail_detail;
    const bool is_failure = value == "fail";
    if (is_failure) {
      fail_status = next_token(rest);
      fail_detail = std::string(trim_leading(rest));
    } else if (!trim_leading(rest).empty()) {
      throw Error("OBSERVE: trailing input after the observed value");
    }
    // Parse everything before touching the session: a malformed request
    // must leave the host exactly as it was.
    const std::size_t tag = parse_tag_token(tag_token);
    const double y =
        is_failure ? 0.0 : parse_double_token(value, "the observation");
    if (!valid_session_name(name)) {
      throw Error("invalid session name \"" + name + "\"");
    }
    std::shared_ptr<Slot> slot = obtain_slot(name, /*create_missing=*/false);
    if (slot->poisoned.load(std::memory_order_acquire)) {
      return err_runaway(name, retry_hint_ms());
    }
    std::unique_lock<std::timed_mutex> lk(slot->mutex, std::defer_lock);
    if (stop != nullptr && stop->has_deadline()) {
      if (!lock_until(lk, stop->deadline())) {
        note_deadline_cut();
        return one_line("ERR deadline " + name +
                        ": session lock not acquired within the deadline "
                        "(nothing was attempted; retry in " +
                        std::to_string(retry_hint_ms()) + "ms)");
      }
    } else {
      lk.lock();
    }
    if (slot->quarantined) {
      return err_quarantined(name, slot->quarantine_reason);
    }
    if (stop != nullptr && stop->stop_requested()) {
      // An observe is only ever cut BEFORE it starts: once the record is
      // journaled the mutation is committed and must run to completion
      // (model refresh included), deadline or not.
      note_deadline_cut();
      return one_line("ERR deadline " + name +
                      ": deadline expired before execution began (nothing "
                      "was attempted; retry in " +
                      std::to_string(retry_hint_ms()) + "ms)");
    }
    if (slot->session == nullptr) load_locked(name, *slot);
    mark_used(name, *slot);
    SessionObserved ob;
    try {
      ob = is_failure
               ? slot->session->observe_failure(tag, fail_status, fail_detail)
               : slot->session->observe_ok(tag, y);
    } catch (const io::CheckpointError& e) {
      // The journal append failed, so nothing of this observe is durable
      // — but the in-memory core consumed the pending tag before the
      // append, so the object can no longer be trusted. Drop it (disk
      // still holds the pre-observe state) and quarantine the name.
      note_io_fault();
      quarantine_locked(name, *slot, e.what());
      return one_line("ERR storage " + name + ": " + std::string(e.what()) +
                      " (session quarantined; CLOSE to reopen after repair)");
    }
    if (ob.snapshot_failed) {
      // Journaled, so the observe is committed and the reply stays OK;
      // the stale snapshot only widens the tail the next resume replays.
      note_io_fault();
    }
    cache_status_locked(*slot);
    return std::string("OK {\"action\":\"") + ob.action + "\"}";
  }

  if (cmd == "STATUS") {
    const std::string name = next_token(rest);
    if (!trim_leading(rest).empty()) {
      throw Error("STATUS takes only a session name");
    }
    if (!valid_session_name(name)) {
      throw Error("invalid session name \"" + name + "\"");
    }
    std::shared_ptr<Slot> slot = obtain_slot(name, /*create_missing=*/false);
    std::unique_lock<std::timed_mutex> lk(slot->mutex, std::try_to_lock);
    if (!lk.owns_lock()) {
      // Busy fast path: a status probe must never queue behind a
      // session's model math just to report on it. Serve the summary
      // cached by the last completed command instead ("last": null until
      // one has completed in this process).
      std::string last;
      {
        std::lock_guard<std::mutex> ml(slot->meta_mutex);
        last = slot->last_status;
      }
      return "OK {\"name\":" + io::json_quote(name) +
             ",\"busy\":true,\"last\":" +
             (last.empty() ? std::string("null") : last) + "}";
    }
    if (slot->quarantined) {
      // Quarantine status is served from memory — an operator probing a
      // degraded session must not trigger more I/O against bad storage.
      return "OK {\"name\":" + io::json_quote(name) +
             ",\"quarantined\":true,\"reason\":" +
             io::json_quote(slot->quarantine_reason) + "}";
    }
    if (slot->session == nullptr) load_locked(name, *slot);
    mark_used(name, *slot);
    cache_status_locked(*slot);
    return "OK " + slot->session->status_json();
  }

  if (cmd == "CLOSE") {
    const std::string name = next_token(rest);
    if (!valid_session_name(name)) {
      throw Error("invalid session name \"" + name + "\"");
    }
    std::shared_ptr<Slot> slot;
    {
      std::lock_guard<std::mutex> lk(table_mutex_);
      const auto it = slots_.find(name);
      if (it != slots_.end()) slot = it->second;
    }
    if (slot == nullptr) {
      if (io::file_exists(config_path(name))) return "OK closed " + name;
      throw Error("unknown session \"" + name + "\"");
    }
    std::unique_lock<std::timed_mutex> lk(slot->mutex, std::defer_lock);
    if (!lk.try_lock()) {
      if (slot->poisoned.load(std::memory_order_acquire)) {
        // The runaway request still holds the lock; CLOSE must not queue
        // behind it (that is exactly what the watchdog exists to avoid).
        return err_runaway(name, retry_hint_ms());
      }
      lk.lock();  // ordinary contention: brief, wait it out
    }
    if (slot->poisoned.exchange(false, std::memory_order_acq_rel)) {
      // CLOSE won the race against watchdog_quarantine: the operator's
      // explicit drop supersedes the pending quarantine.
      std::lock_guard<std::mutex> ml(slot->meta_mutex);
      slot->poison_reason.clear();
    }
    const bool existed = slot->session != nullptr || slot->quarantined ||
                         io::file_exists(config_path(name));
    slot->session.reset();
    mark_unloaded(name, *slot);
    {
      std::lock_guard<std::mutex> ml(slot->meta_mutex);
      slot->last_status.clear();
    }
    if (slot->quarantined) {
      // CLOSE is the operator's "I repaired the storage" acknowledgment:
      // the next command on this name resumes from the files afresh.
      slot->quarantined = false;
      slot->quarantine_reason.clear();
      quarantine_gauge_.fetch_sub(1, std::memory_order_relaxed);
    }
    if (!existed) throw Error("unknown session \"" + name + "\"");
    return "OK closed " + name;
  }

  throw Error("unknown command \"" + cmd +
              "\" (expected NEW|SUGGEST|OBSERVE|STATUS|CLOSE)");
}

}  // namespace easybo::serve
