#pragma once
/// \file session.h
/// \brief One named, durable ask/tell session hosted by the server.
///
/// A Session is an AskTellCore plus the persistence discipline a
/// multi-tenant host needs: every mutation (suggest AND observe) is made
/// durable before its reply leaves the process — observes append to the
/// session's journal inside the core, and a snapshot is rewritten
/// atomically after each mutation. That cadence is deliberately tighter
/// than BoEngine's (which snapshots on a journal-line cadence): a hosted
/// session can be evicted between any two protocol commands, and a
/// suggestion whose tag has been handed to a remote client MUST survive
/// eviction — the client will come back with `OBSERVE <tag>` long after
/// the in-memory object is gone. With a snapshot per mutation, resume is
/// exactly restore-the-snapshot; the only journal tail that can exist is
/// the single observe record of a crash between journal append and
/// snapshot rename, and that record is re-applied on resume.
///
/// Durability shares PR 4's format (docs/checkpoint-format.md): the same
/// CRC-framed journal, the same BoCheckpoint snapshot, the same config
/// fingerprint refusal on mismatch. The executor-side snapshot fields a
/// BoEngine run would fill (clock, busy time, supervisor RNG) are stood
/// in by the session's logical clock (one tick per observation), zero
/// busy time, and the supervisor stream's seed-derived initial state —
/// so the files stay schema-complete.

#include <chrono>
#include <cstddef>
#include <map>
#include <memory>
#include <string>

#include "bo/ask_tell.h"
#include "serve/session_config.h"

namespace easybo::serve {

/// What one observe did, as reported on the wire.
struct SessionObserved {
  const char* action = "";  ///< "observed" | "penalized" | "discarded"
  /// The observe was journaled (committed — the reply is OK) but the
  /// snapshot rewrite after it failed. The previous snapshot generation
  /// plus the journal tail still resume to exactly the current state, so
  /// nothing is lost; the host reports the fault on its health plane.
  bool snapshot_failed = false;
  std::string storage_error;  ///< what() of the snapshot failure, if any
};

/// A durable, named AskTellCore. Construct through create() or resume();
/// both take the checkpoint base path ("<base>.journal"/"<base>.snapshot")
/// the host chose for this session.
class Session {
 public:
  /// Starts a fresh session: truncates the journal, writes the header
  /// line and the pristine snapshot (so the session is resumable before
  /// its first command completes).
  static std::unique_ptr<Session> create(std::string name, SessionSpec spec,
                                         const std::string& checkpoint_base);

  /// Rebuilds a session from its checkpoint files. \p spec must parse to
  /// the same configuration the files were written with — the config
  /// fingerprint is checked exactly as BoEngine::resume checks it
  /// (io::CheckpointError on mismatch). Re-applies whatever journal tail
  /// the restored snapshot has not absorbed. A missing or torn
  /// "<base>.snapshot" falls back to the previous generation
  /// "<base>.snapshot.old" (see snapshot() below) — a half-written
  /// snapshot is never accepted, and only when neither generation is
  /// usable does resume refuse. A journal holding no eval records with
  /// no usable snapshot is the signature of a crash inside create();
  /// that resumes to the pristine session.
  static std::unique_ptr<Session> resume(std::string name, SessionSpec spec,
                                         const std::string& checkpoint_base);

  /// suggest + snapshot. Throws easybo::Error when the budget is
  /// exhausted or the initial design is fully in flight.
  ///
  /// \p stop is the request's cancellation token (null = none). It is
  /// polled at the core's safe checkpoints AND re-checked after the core
  /// returns, immediately before the snapshot — so even a computation
  /// that ignored every cooperative poll cannot commit a proposal past
  /// its deadline. On common::Cancelled the caller MUST discard this
  /// Session object: the in-memory core is mid-mutation dirty, while the
  /// files still hold the exact pre-suggest state (the snapshot below is
  /// the only thing that publishes a suggest). Resuming from them and
  /// retrying reproduces the identical proposal — a cancelled suggest
  /// consumed nothing (tests/test_serve_deadline.cpp pins this).
  bo::Suggestion suggest(const common::StopToken* stop = nullptr);

  /// Successful evaluation result for \p tag: observe + snapshot.
  SessionObserved observe_ok(std::size_t tag, double y);

  /// Failed evaluation for \p tag; \p status names the failure
  /// ("exception" | "timeout" | "non_finite"). The session's failure
  /// policy (discard/penalize) decides what happens; there is no abort
  /// over the protocol. \p error is an optional human-readable detail
  /// recorded in the journal.
  ///
  /// Storage faults during observe_ok/observe_failure split two ways:
  /// a failed *journal append* throws io::CheckpointError with nothing
  /// durable (at worst a torn tail the next resume truncates) — the
  /// request had no effect, but this in-memory object is no longer
  /// trustworthy (the pending tag was already consumed) and must be
  /// dropped by the caller. A failed *snapshot* after a successful
  /// append is reported via SessionObserved::snapshot_failed with an OK
  /// result: the mutation is durable through the journal.
  SessionObserved observe_failure(std::size_t tag, const std::string& status,
                                  const std::string& error = "");

  /// One-line JSON status object (docs/service-protocol.md).
  std::string status_json() const;

  /// Installs a non-owning trace sink on the core (counters, refit spans)
  /// and on the session itself. The session never runs the objective, so
  /// its "objective eval" spans are wall SUGGEST-to-OBSERVE turnaround:
  /// the client-side latency an operator actually waits on. Like every
  /// sink wiring this is behaviorally inert — with nullptr (the default)
  /// no clock is read and no proposal changes.
  void set_trace(obs::TraceSink* sink);

  const std::string& name() const { return name_; }
  const bo::AskTellCore& core() const { return core_; }

 private:
  Session(std::string name, SessionSpec spec);

  /// Rewrites "<base>.snapshot" atomically, first rotating the current
  /// (known-good) snapshot to "<base>.snapshot.old" so that a torn
  /// replace — a non-atomic filesystem, injected via io/fs_fault.h —
  /// still leaves one intact generation on disk. Because every mutation
  /// snapshots, each generation absorbs all but at most one journal
  /// record, so resuming from the previous generation plus the journal
  /// tail is exact. Rotation is skipped while the on-disk snapshot is
  /// not known good (a damaged generation must never clobber the intact
  /// fallback); rotation failures are themselves non-fatal.
  void snapshot();

  /// Closes the turnaround span for \p tag, when one is open.
  void record_turnaround(std::size_t tag);

  std::string name_;
  bo::AskTellCore core_;
  /// Stand-in for the supervisor jitter stream a BoEngine run would
  /// snapshot: the stream's initial state for this seed. The host never
  /// retries evaluations, so the stream never advances.
  RngState sup_rng_;
  /// Logical clock: one tick per absorbed observation. Recorded as each
  /// proposal's submit time and as the snapshot clock.
  double now_ = 0.0;
  /// True while "<base>.snapshot" is known to hold an intact generation
  /// — the precondition for rotating it to ".old" (see snapshot()).
  bool snapshot_valid_ = false;
  obs::TraceSink* trace_ = nullptr;
  /// Wall-clock SUGGEST times of in-flight tags, kept only while a trace
  /// sink is installed — the basis of the turnaround spans above. Entries
  /// for tags observed after eviction/resume are simply absent (their
  /// suggest happened in another process) and produce no span.
  std::map<std::size_t, std::chrono::steady_clock::time_point> inflight_wall_;
};

}  // namespace easybo::serve
