#include "serve/work_queue.h"

#include <exception>
#include <utility>

#include "common/error.h"

namespace easybo::serve {

bool WorkQueue::Task::wait_until(
    std::chrono::steady_clock::time_point until) {
  std::unique_lock<std::mutex> lk(m_);
  return cv_.wait_until(lk, until, [this] { return done_; });
}

void WorkQueue::Task::wait() {
  std::unique_lock<std::mutex> lk(m_);
  cv_.wait(lk, [this] { return done_; });
}

std::string WorkQueue::Task::take_reply() {
  std::lock_guard<std::mutex> lk(m_);
  return std::move(reply_);
}

WorkQueue::Abandon WorkQueue::Task::abandon() {
  std::lock_guard<std::mutex> lk(m_);
  if (done_) return Abandon::Completed;
  abandoned_ = true;
  return started_ ? Abandon::Running : Abandon::Queued;
}

WorkQueue::WorkQueue(WorkQueueOptions opt) : opt_(opt) {
  EASYBO_REQUIRE(opt_.workers >= 1, "WorkQueue: workers must be >= 1");
  EASYBO_REQUIRE(opt_.capacity >= 1, "WorkQueue: capacity must be >= 1");
  threads_.reserve(opt_.workers);
  for (std::size_t i = 0; i < opt_.workers; ++i) {
    threads_.emplace_back([this] { worker_loop(); });
  }
}

WorkQueue::~WorkQueue() {
  {
    std::lock_guard<std::mutex> lk(m_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : threads_) {
    if (t.joinable()) t.join();
  }
}

std::shared_ptr<WorkQueue::Task> WorkQueue::submit(
    Fn fn, common::StopToken token, std::function<void()> on_abandoned_done) {
  auto task = std::make_shared<Task>();
  task->fn_ = std::move(fn);
  task->token_ = std::move(token);
  task->on_abandoned_done_ = std::move(on_abandoned_done);
  task->enqueued_ = std::chrono::steady_clock::now();
  {
    std::lock_guard<std::mutex> lk(m_);
    if (stopping_ || queue_.size() >= opt_.capacity) return nullptr;
    queue_.push_back(task);
  }
  cv_.notify_one();
  return task;
}

std::size_t WorkQueue::depth() const {
  std::lock_guard<std::mutex> lk(m_);
  return queue_.size();
}

void WorkQueue::worker_loop() {
  for (;;) {
    std::shared_ptr<Task> task;
    {
      std::unique_lock<std::mutex> lk(m_);
      cv_.wait(lk, [this] { return stopping_ || !queue_.empty(); });
      // On shutdown the remaining queue is drained, not dropped: a
      // submitter could be blocked in wait() with no deadline, and a
      // published reply is the only thing that releases it.
      if (queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    double queued_seconds = 0.0;
    {
      std::lock_guard<std::mutex> lk(task->m_);
      if (task->abandoned_) {
        // The submitter's deadline passed while the task was still
        // queued; it classified the abandonment as Queued and replied
        // without us. Nothing ran, so there is nothing to report.
        task->done_ = true;
        continue;
      }
      task->started_ = true;
      queued_seconds = std::chrono::duration<double>(
                           std::chrono::steady_clock::now() - task->enqueued_)
                           .count();
    }
    std::string reply;
    try {
      reply = task->fn_(task->token_, queued_seconds);
    } catch (const std::exception& e) {
      // Defense in depth: SessionHost's closures catch everything
      // themselves, but a worker thread must never die on a throw.
      reply = std::string("ERR ") + e.what();
    }
    std::function<void()> abandoned_done;
    {
      std::lock_guard<std::mutex> lk(task->m_);
      task->reply_ = std::move(reply);
      task->done_ = true;
      if (task->abandoned_) {
        abandoned_done = std::move(task->on_abandoned_done_);
      }
      task->cv_.notify_all();
    }
    // Outside the task mutex: the callback takes host locks of its own.
    if (abandoned_done) abandoned_done();
  }
}

}  // namespace easybo::serve
