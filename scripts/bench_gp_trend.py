#!/usr/bin/env python3
"""GP hot-path performance trend gate.

Reads a google-benchmark JSON file produced by bench/micro_gp (a fresh
run, and optionally the committed BENCH_micro_gp.json baseline) and
asserts the scaling contract of the PR that introduced the approximate
backend and the zero-copy hallucination overlay:

  1. BM_HallucinateOverlay/2048 must be at least MIN_OVERLAY_SPEEDUP x
     faster than BM_HallucinateDeepCopy/2048 (k = 8 pending points —
     the penalized-proposal hot path).
  2. BM_RffFitFull/4096 must be faster than BM_GpFitFull/1024: the
     approximate backend's whole point is fitting far larger archives
     than the exact GP can.

Both checks are WITHIN-RUN ratios, so they hold on any machine and any
sane compiler — absolute times are never compared against the committed
baseline. When a baseline file is supplied, the same two invariants are
re-checked on it (a committed baseline that violates its own contract is
stale) and the fresh/baseline ratio drift is reported for information
only.

Usage:
    bench_gp_trend.py FRESH.json [BASELINE.json]

Stdlib only, so the CI job needs no pip installs.
"""

import json
import sys

MIN_OVERLAY_SPEEDUP = 5.0

# (label, numerator benchmark, denominator benchmark, min ratio)
INVARIANTS = [
    (
        "overlay >= {:.0f}x deep-copy at n=2048, k=8".format(MIN_OVERLAY_SPEEDUP),
        "BM_HallucinateDeepCopy/2048",
        "BM_HallucinateOverlay/2048",
        MIN_OVERLAY_SPEEDUP,
    ),
    (
        "rff fit at n=4096 beats exact fit at n=1024",
        "BM_GpFitFull/1024",
        "BM_RffFitFull/4096",
        1.0,
    ),
]


def load_times(path):
    """Map benchmark name -> real_time in nanoseconds."""
    with open(path, encoding="utf-8") as f:
        doc = json.load(f)
    times = {}
    for bench in doc.get("benchmarks", []):
        if bench.get("run_type", "iteration") != "iteration":
            continue
        unit = bench.get("time_unit", "ns")
        scale = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}.get(unit)
        if scale is None:
            raise SystemExit(f"{path}: unknown time_unit {unit!r}")
        times[bench["name"]] = float(bench["real_time"]) * scale
    return times


def check(path, times):
    failures = []
    for label, numerator, denominator, min_ratio in INVARIANTS:
        missing = [n for n in (numerator, denominator) if n not in times]
        if missing:
            failures.append(f"{label}: missing benchmarks {missing}")
            continue
        ratio = times[numerator] / times[denominator]
        verdict = "ok" if ratio >= min_ratio else "FAIL"
        print(
            f"{path}: {label}: {numerator} / {denominator} = "
            f"{ratio:.2f} (need >= {min_ratio:.2f}) [{verdict}]"
        )
        if ratio < min_ratio:
            failures.append(f"{label}: ratio {ratio:.2f} < {min_ratio:.2f}")
    return failures


def main(argv):
    if len(argv) not in (2, 3):
        print(__doc__, file=sys.stderr)
        return 2

    fresh_path = argv[1]
    fresh = load_times(fresh_path)
    failures = check(fresh_path, fresh)

    if len(argv) == 3:
        base_path = argv[2]
        base = load_times(base_path)
        failures += check(base_path, base)
        # Informational drift report: flag, but do not fail on, absolute
        # changes — CI machines differ from whoever committed the baseline.
        common = sorted(set(fresh) & set(base))
        for name in common:
            drift = fresh[name] / base[name]
            if drift > 2.0 or drift < 0.5:
                print(
                    f"note: {name} drifted {drift:.2f}x vs baseline "
                    f"({base[name] / 1e6:.3f} ms -> {fresh[name] / 1e6:.3f} ms)"
                )

    if failures:
        print("bench_gp_trend: FAILED", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print("bench_gp_trend: all invariants hold")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
