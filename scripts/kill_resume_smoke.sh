#!/usr/bin/env sh
# Kill-and-resume smoke test for the crash-safe run subsystem
# (docs/checkpoint-format.md). Starts easybo_cli with --checkpoint and a
# per-call wall sleep so the run has a real wall footprint, SIGKILLs it
# mid-run, resumes with --resume, and asserts that the resumed run
# completes with the same final best as an uninterrupted reference run
# (bit-identical proposal stream => bit-identical best). Run by CI on the
# plain build; usable locally as:
#
#   sh scripts/kill_resume_smoke.sh [path/to/easybo_cli]
#
set -eu

cli=${1:-build/examples/easybo_cli}
[ -x "$cli" ] || { echo "kill_resume_smoke: $cli not built" >&2; exit 1; }

workdir=$(mktemp -d)
trap 'rm -rf "$workdir"' EXIT

args="--problem branin --algo easybo --sims 40 --init 8 --batch 4 --seed 7"

# Reference: the same seeded run, uninterrupted.
# shellcheck disable=SC2086
"$cli" $args > "$workdir/reference.out"
ref_best=$(sed -n 's/.*best = \([^,]*\),.*/\1/p' "$workdir/reference.out")
[ -n "$ref_best" ] || { echo "kill_resume_smoke: no best in reference output" >&2; exit 1; }

# Journaled run, SIGKILLed mid-flight. 40 evals x 60 ms of injected
# sleep ~= 2.4 s of wall time; the kill lands about a third in.
# shellcheck disable=SC2086
"$cli" $args --checkpoint "$workdir/run" --inject-sleep-ms 60 \
  > "$workdir/killed.out" 2>&1 &
pid=$!
sleep 0.9
kill -9 "$pid" 2>/dev/null || true
wait "$pid" 2>/dev/null || true

[ -s "$workdir/run.journal" ] || { echo "kill_resume_smoke: no journal written before the kill" >&2; exit 1; }
lines=$(wc -l < "$workdir/run.journal" | tr -d ' ')
echo "kill_resume_smoke: killed mid-run with $lines journal lines"
if [ "$lines" -ge 41 ]; then
  echo "kill_resume_smoke: the run finished before the kill; raise --inject-sleep-ms" >&2
  exit 1
fi

# Resume must finish the run and land on the reference best exactly.
# shellcheck disable=SC2086
"$cli" $args --resume "$workdir/run" > "$workdir/resumed.out" 2> "$workdir/resumed.err"
grep -q "resumed from" "$workdir/resumed.err" || { echo "kill_resume_smoke: no resume note" >&2; exit 1; }
res_best=$(sed -n 's/.*best = \([^,]*\),.*/\1/p' "$workdir/resumed.out")
res_sims=$(sed -n 's/.* \([0-9]*\) sims.*/\1/p' "$workdir/resumed.out")

[ "$res_sims" = "40" ] || { echo "kill_resume_smoke: resumed run completed $res_sims/40 sims" >&2; exit 1; }
if [ "$res_best" != "$ref_best" ]; then
  echo "kill_resume_smoke: resumed best $res_best != reference best $ref_best" >&2
  exit 1
fi
echo "kill_resume_smoke: resume completed 40/40 sims, best = $res_best (matches reference)"
