#!/usr/bin/env python3
"""Check that relative markdown links resolve to real files.

Scans every *.md file in the repo (skipping build trees), extracts
[text](target) and bare reference-style targets, and verifies that each
relative target exists on disk. External links (http/https/mailto) and
pure in-page anchors are ignored; anchors on relative links are stripped
before the existence check. Exits non-zero listing every broken link.

Stdlib only, so the CI docs job needs no pip installs.
"""

import os
import re
import sys

SKIP_DIRS = {".git", "build", "third_party", "node_modules"}
LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")


def md_files(root):
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames[:] = [
            d for d in dirnames if d not in SKIP_DIRS and not d.startswith("build")
        ]
        for name in sorted(filenames):
            if name.endswith(".md"):
                yield os.path.join(dirpath, name)


def check_file(path, root):
    broken = []
    with open(path, encoding="utf-8") as f:
        text = f.read()
    # Fenced code blocks routinely contain [x](y)-looking text; drop them.
    text = re.sub(r"```.*?```", "", text, flags=re.DOTALL)
    for match in LINK_RE.finditer(text):
        target = match.group(1)
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        if target.startswith("#"):  # in-page anchor
            continue
        target = target.split("#", 1)[0]
        if not target:
            continue
        resolved = os.path.normpath(os.path.join(os.path.dirname(path), target))
        if not os.path.exists(resolved):
            broken.append((os.path.relpath(path, root), target))
    return broken


def main():
    root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    broken = []
    checked = 0
    for path in md_files(root):
        checked += 1
        broken.extend(check_file(path, root))
    if broken:
        for source, target in broken:
            print(f"BROKEN LINK: {source} -> {target}")
        print(f"{len(broken)} broken link(s) across {checked} markdown files")
        return 1
    print(f"all relative links resolve across {checked} markdown files")
    return 0


if __name__ == "__main__":
    sys.exit(main())
