#!/usr/bin/env sh
# Docs-coverage gate: every field of bo::BoConfig must be mentioned, by
# name, somewhere a user would look — README.md, DESIGN.md,
# EXPERIMENTS.md, or docs/*.md. Adding a knob without documenting it
# fails CI. Run from anywhere; resolves paths relative to the repo root.
set -eu

root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
config="$root/src/bo/config.h"
docs="$root/README.md $root/DESIGN.md $root/EXPERIMENTS.md"
for f in "$root"/docs/*.md; do docs="$docs $f"; done

# Field names: member declarations between "struct BoConfig {" and the
# closing "};", excluding methods (lines containing "(").
fields=$(sed -n '/^struct BoConfig {/,/^};/p' "$config" \
  | grep -v '(' \
  | grep -E '^\s+[A-Za-z_][A-Za-z0-9_:<>, ]*\s+[a-z_][a-z0-9_]*\s*(=|;)' \
  | sed -E 's/^\s+[A-Za-z_][A-Za-z0-9_:<>, ]*\s+([a-z_][a-z0-9_]*)\s*(=|;).*/\1/')

[ -n "$fields" ] || { echo "check_docs: failed to extract BoConfig fields from $config" >&2; exit 1; }

missing=0
for field in $fields; do
  # shellcheck disable=SC2086
  if ! grep -qw -- "$field" $docs; then
    echo "UNDOCUMENTED: BoConfig::$field is mentioned in none of: README.md, DESIGN.md, EXPERIMENTS.md, docs/*.md" >&2
    missing=$((missing + 1))
  fi
done

count=$(printf '%s\n' $fields | wc -l | tr -d ' ')
if [ "$missing" -gt 0 ]; then
  echo "check_docs: $missing of $count BoConfig fields undocumented" >&2
  exit 1
fi
echo "check_docs: all $count BoConfig fields are documented"
