#!/usr/bin/env python3
"""Tail/aggregate easybo.stream.v1 telemetry streams (docs/telemetry.md).

Reads one or more JSONL stream files produced by `easybo_cli --stream`
or `easybo_serve --stream` and prints fleet-level progress: per-stream
event/drop totals, counter totals, and the same online statistics the
server keeps (bias-corrected EMA and P-squared p50/p90 over objective
eval latency) recomputed client-side from the span frames.

Modes:
  obs_tail.py STREAM [STREAM...]             one-shot summary of each
                                             stream plus a fleet total
  obs_tail.py --follow STREAM [STREAM...]    live: keep reading as the
                                             files grow (^C to stop)
  obs_tail.py --check-counters METRICS.json STREAM [STREAM...]
                                             verify the streams' counter
                                             totals reproduce the final
                                             MetricsReport ("counters"
                                             section) of a clean run;
                                             exits 1 on any mismatch
  obs_tail.py --check-health HEALTH.json STREAM [STREAM...]
                                             verify a captured `STATUS`
                                             health payload (the serve
                                             health plane) against the
                                             streams' serve.* counter
                                             totals; exits 1 on mismatch

Dropped events (drop frames / seq gaps) make a stream an under-count of
the run; --check-counters and --check-health therefore refuse streams
that report drops. Stdlib only, so the CI jobs need no pip installs.
"""

import argparse
import json
import sys
import time


class Cema:
    """Bias-corrected EMA, the exact formula of obs/online_stats.h:
    b_n = (1-a) b_{n-1} + a x_n, value = b_n / (1 - (1-a)^n)."""

    def __init__(self, alpha=0.05):
        self.alpha = alpha
        self.biased = 0.0
        self.decay = 1.0
        self.count = 0

    def add(self, x):
        self.biased += self.alpha * (x - self.biased)
        self.decay *= 1.0 - self.alpha
        self.count += 1

    def value(self):
        correction = 1.0 - self.decay
        return self.biased / correction if correction > 0.0 else 0.0


class P2Quantile:
    """Jain & Chlamtac's P-squared streaming quantile, matching
    obs/online_stats.cpp marker for marker."""

    def __init__(self, q):
        self.q = q
        self.count = 0
        self.heights = [0.0] * 5
        self.positions = [0.0] * 5
        self.desired = [0.0] * 5
        self.increments = [0.0, q / 2.0, q, (1.0 + q) / 2.0, 1.0]

    def add(self, x):
        if self.count < 5:
            self.heights[self.count] = x
            self.count += 1
            if self.count == 5:
                self.heights.sort()
                self.positions = [1.0, 2.0, 3.0, 4.0, 5.0]
                q = self.q
                self.desired = [1.0, 1.0 + 2.0 * q, 1.0 + 4.0 * q,
                                3.0 + 2.0 * q, 5.0]
            return
        if x < self.heights[0]:
            self.heights[0] = x
            k = 0
        elif x >= self.heights[4]:
            self.heights[4] = x
            k = 3
        else:
            k = 0
            while k < 3 and x >= self.heights[k + 1]:
                k += 1
        for i in range(k + 1, 5):
            self.positions[i] += 1.0
        for i in range(5):
            self.desired[i] += self.increments[i]
        self.count += 1
        for i in (1, 2, 3):
            d = self.desired[i] - self.positions[i]
            below = self.positions[i] - self.positions[i - 1]
            above = self.positions[i + 1] - self.positions[i]
            if (d >= 1.0 and above > 1.0) or (d <= -1.0 and below > 1.0):
                d = 1.0 if d >= 0.0 else -1.0
                h = self._parabolic(i, d)
                if not self.heights[i - 1] < h < self.heights[i + 1]:
                    h = self._linear(i, d)
                self.heights[i] = h
                self.positions[i] += d

    def _parabolic(self, i, d):
        p = self.positions
        h = self.heights
        return h[i] + d / (p[i + 1] - p[i - 1]) * (
            (p[i] - p[i - 1] + d) * (h[i + 1] - h[i]) / (p[i + 1] - p[i])
            + (p[i + 1] - p[i] - d) * (h[i] - h[i - 1]) / (p[i] - p[i - 1]))

    def _linear(self, i, d):
        j = i + int(d)
        return self.heights[i] + d * (self.heights[j] - self.heights[i]) / (
            self.positions[j] - self.positions[i])

    def value(self):
        if self.count == 0:
            return 0.0
        if self.count < 5:
            xs = sorted(self.heights[: self.count])
            rank = self.q * (self.count - 1)
            lo = int(rank)
            hi = min(lo + 1, self.count - 1)
            frac = rank - lo
            return xs[lo] + frac * (xs[hi] - xs[lo])
        return self.heights[2]


class StreamState:
    """Everything aggregated from one stream's frames so far."""

    def __init__(self, path):
        self.path = path
        self.source = "?"
        self.offset = 0  # bytes consumed (for --follow)
        self.events = 0
        self.dropped = 0  # from drop frames / the bye frame
        self.seq_gaps = 0  # independent cross-check from seq gaps
        self.next_seq = None
        self.counters = {}
        self.spans = {}  # phase -> [count, seconds]
        self.eval_latency = Cema()
        self.eval_p50 = P2Quantile(0.5)
        self.eval_p90 = P2Quantile(0.9)
        self.saw_bye = False
        self.bad_lines = 0

    def feed(self, line):
        line = line.strip()
        if not line:
            return
        try:
            frame = json.loads(line)
        except json.JSONDecodeError:
            self.bad_lines += 1  # a torn tail mid-write is normal in --follow
            return
        ftype = frame.get("type")
        if ftype == "hello":
            self.source = frame.get("source", "?")
            return
        if ftype == "drop":
            self.dropped = max(self.dropped, int(frame["dropped_total"]))
            return
        if ftype == "bye":
            self.saw_bye = True
            self.dropped = max(self.dropped, int(frame["dropped_total"]))
            return
        if ftype not in ("span", "counter"):
            return  # stats frames are the server's own view; we recompute
        seq = int(frame["seq"])
        if self.next_seq is not None and seq > self.next_seq:
            self.seq_gaps += seq - self.next_seq
        self.next_seq = seq + 1
        self.events += 1
        if ftype == "counter":
            name = frame["name"]
            self.counters[name] = self.counters.get(name, 0) + int(
                frame["delta"])
        else:
            phase = frame["phase"]
            seconds = float(frame["seconds"])
            stat = self.spans.setdefault(phase, [0, 0.0])
            stat[0] += 1
            stat[1] += seconds
            if phase == "objective_eval":
                self.eval_latency.add(seconds)
                self.eval_p50.add(seconds)
                self.eval_p90.add(seconds)

    def read_new(self):
        """Consume whatever the file has grown by since the last call."""
        try:
            with open(self.path, "r", encoding="utf-8") as f:
                f.seek(self.offset)
                chunk = f.read()
                self.offset = f.tell()
        except OSError as e:
            print(f"obs_tail: cannot read {self.path}: {e}", file=sys.stderr)
            return
        for line in chunk.splitlines():
            self.feed(line)

    def summary_lines(self):
        drop_note = "" if self.dropped == 0 else (
            f"  [UNDER-COUNT: {self.dropped} dropped]")
        yield (f"{self.source} ({self.path}): {self.events} events, "
               f"{self.dropped} dropped{drop_note}"
               + ("" if self.saw_bye else "  [live]"))
        ev = self.eval_latency
        if ev.count:
            yield (f"  eval latency: n={ev.count} cema={ev.value():.6g}s "
                   f"p50={self.eval_p50.value():.6g}s "
                   f"p90={self.eval_p90.value():.6g}s")
        for phase in sorted(self.spans):
            n, secs = self.spans[phase]
            yield f"  phase {phase}: {n} spans, {secs:.6g}s"
        for name in sorted(self.counters):
            yield f"  counter {name}: {self.counters[name]}"


def fleet_summary(states):
    total_events = sum(s.events for s in states)
    total_dropped = sum(s.dropped for s in states)
    counters = {}
    for s in states:
        for name, value in s.counters.items():
            counters[name] = counters.get(name, 0) + value
    lines = [f"fleet: {len(states)} stream(s), {total_events} events, "
             f"{total_dropped} dropped"]
    proposals = sum(v for n, v in counters.items()
                    if n.startswith("bo.proposals."))
    refits = counters.get("bo.hyper_refit", 0)
    failures = counters.get("eval.failures", 0)
    lines.append(f"fleet: {proposals} proposals, {refits} hyper-refits, "
                 f"{failures} eval failures")
    return lines


def check_counters(metrics_path, states):
    """Final MetricsReport counters must be reproducible from the streams
    alone (summed across streams; a clean run only)."""
    with open(metrics_path, "r", encoding="utf-8") as f:
        report = json.load(f)
    if report.get("schema") != "easybo.metrics.v1":
        print(f"obs_tail: {metrics_path} is not an easybo.metrics.v1 report",
              file=sys.stderr)
        return 1
    if not refuse_undercounting(states, "counter totals"):
        return 1
    streamed = {}
    for s in states:
        for name, value in s.counters.items():
            streamed[name] = streamed.get(name, 0) + value
    mismatches = 0
    for name, value in sorted(report.get("counters", {}).items()):
        got = streamed.get(name, 0)
        if got != value:
            print(f"MISMATCH {name}: metrics={value} stream={got}")
            mismatches += 1
    for name in sorted(set(streamed) - set(report.get("counters", {}))):
        print(f"MISMATCH {name}: metrics=absent stream={streamed[name]}")
        mismatches += 1
    if mismatches:
        print(f"obs_tail: {mismatches} counter(s) failed to reconcile "
              f"against {metrics_path}", file=sys.stderr)
        return 1
    n = len(report.get("counters", {}))
    print(f"obs_tail: all {n} counters reconcile against {metrics_path}")
    return 0


def refuse_undercounting(states, mode):
    """A stream with drops or no bye frame cannot prove totals."""
    for s in states:
        if s.dropped or s.seq_gaps:
            print(f"obs_tail: {s.path} reports dropped events; an "
                  f"under-counting stream cannot reconcile {mode}",
                  file=sys.stderr)
            return False
        if not s.saw_bye:
            print(f"obs_tail: {s.path} has no bye frame (still live or "
                  "truncated); refusing to reconcile", file=sys.stderr)
            return False
    return True


# Health-plane integers that are cumulative counters mirrored 1:1 onto
# the stream (docs/metrics-schema.md). Gauges (inflight, queue_depth,
# sessions_live, quarantined — the latter counts CURRENT quarantines
# while serve.quarantined counts historical ones) cannot reconcile and
# are deliberately absent.
HEALTH_COUNTER_KEYS = {
    "shed": "serve.shed",
    "io_faults": "serve.io_faults",
    "deadline_cut": "serve.deadline_cut",
    "queue_shed": "serve.queue_shed",
    "watchdog_trips": "serve.watchdog_trips",
}


def check_health(health_path, states):
    """A captured `STATUS` health payload must agree with the serve.*
    counter totals summed across the streams (docs/service-protocol.md:
    the health plane and the stream are two views of the same atomics)."""
    with open(health_path, "r", encoding="utf-8") as f:
        text = f.read().strip()
    if text.startswith("OK "):
        text = text[3:]  # accept the raw reply line, not just the JSON
    try:
        health = json.loads(text)
    except json.JSONDecodeError as e:
        print(f"obs_tail: {health_path} is not a health JSON payload: {e}",
              file=sys.stderr)
        return 1
    missing = [k for k in HEALTH_COUNTER_KEYS if k not in health]
    if missing:
        print(f"obs_tail: {health_path} lacks health keys {missing}; is "
              "this really a `STATUS` reply?", file=sys.stderr)
        return 1
    if not refuse_undercounting(states, "health counters"):
        return 1
    streamed = {}
    for s in states:
        for name, value in s.counters.items():
            streamed[name] = streamed.get(name, 0) + value
    mismatches = 0
    for key, counter in sorted(HEALTH_COUNTER_KEYS.items()):
        want = int(health[key])
        got = streamed.get(counter, 0)
        if got != want:
            print(f"MISMATCH {key}: health={want} stream({counter})={got}")
            mismatches += 1
    if mismatches:
        print(f"obs_tail: {mismatches} health counter(s) failed to "
              f"reconcile against {health_path}", file=sys.stderr)
        return 1
    print(f"obs_tail: all {len(HEALTH_COUNTER_KEYS)} health counters "
          f"reconcile against {health_path}")
    return 0


def main():
    parser = argparse.ArgumentParser(
        description="Tail/aggregate easybo.stream.v1 telemetry streams.")
    parser.add_argument("--follow", action="store_true",
                        help="keep reading as the stream files grow")
    parser.add_argument("--interval", type=float, default=1.0,
                        help="--follow poll period in seconds")
    parser.add_argument("--check-counters", metavar="METRICS_JSON",
                        help="verify counter totals against a "
                             "MetricsReport JSON export")
    parser.add_argument("--check-health", metavar="HEALTH_JSON",
                        help="verify a captured `STATUS` health payload "
                             "against the streams' serve.* counters")
    parser.add_argument("streams", nargs="+", help="stream JSONL file(s)")
    args = parser.parse_args()

    states = [StreamState(path) for path in args.streams]
    for s in states:
        s.read_new()

    if args.check_counters:
        return check_counters(args.check_counters, states)
    if args.check_health:
        return check_health(args.check_health, states)

    if args.follow:
        try:
            while True:
                for s in states:
                    s.read_new()
                print("\x1b[2J\x1b[H", end="")  # clear screen, home cursor
                for s in states:
                    for line in s.summary_lines():
                        print(line)
                for line in fleet_summary(states):
                    print(line)
                if all(s.saw_bye for s in states):
                    break
                time.sleep(args.interval)
        except KeyboardInterrupt:
            pass
        return 0

    for s in states:
        for line in s.summary_lines():
            print(line)
    for line in fleet_summary(states):
        print(line)
    return 0


if __name__ == "__main__":
    sys.exit(main())
