#!/usr/bin/env python3
"""Syntax-check every fenced code block in the user-facing docs.

Walks README.md, DESIGN.md, EXPERIMENTS.md and docs/*.md, extracts
every ``` fenced block, and validates the ones whose language tag we
can check mechanically:

  sh / bash   parsed with `sh -n` (a "$ " shell prompt prefix is
              stripped first, so transcript-style blocks stay valid)
  json        parsed with json.loads

Blocks tagged with anything else (cpp, ...) and untagged blocks
(ASCII diagrams, wire grammars, transcripts) are counted but skipped —
tag a block `sh` or `json` to put it under this gate. A stale command
line in a tagged block fails CI with its file and line number.

Stdlib only; exits non-zero listing every failing block.
"""

import json
import os
import subprocess
import sys
import tempfile

CHECKED = {"sh", "bash", "json"}


def repo_root():
    return os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def doc_files(root):
    files = [os.path.join(root, name)
             for name in ("README.md", "DESIGN.md", "EXPERIMENTS.md")]
    docs = os.path.join(root, "docs")
    if os.path.isdir(docs):
        files.extend(os.path.join(docs, name)
                     for name in sorted(os.listdir(docs))
                     if name.endswith(".md"))
    return [f for f in files if os.path.isfile(f)]


def fenced_blocks(path):
    """Yield (start_line, language, text) for every ``` fence in path."""
    lang = None
    start = 0
    body = []
    with open(path, "r", encoding="utf-8") as f:
        for lineno, line in enumerate(f, 1):
            stripped = line.rstrip("\n")
            if stripped.startswith("```"):
                if lang is None:
                    lang = stripped[3:].strip().split()[0].lower() \
                        if stripped[3:].strip() else ""
                    start = lineno
                    body = []
                else:
                    yield start, lang, "".join(body)
                    lang = None
            elif lang is not None:
                body.append(line)
    if lang is not None:
        yield start, lang, "ERROR: unterminated fence"


def strip_prompts(text):
    """Drop the "$ " prompt convention so transcripts parse as scripts."""
    out = []
    for line in text.splitlines():
        if line.startswith("$ "):
            line = line[2:]
        out.append(line)
    return "\n".join(out) + "\n"


def check_shell(text):
    with tempfile.NamedTemporaryFile("w", suffix=".sh", delete=False) as tmp:
        tmp.write(strip_prompts(text))
        tmp_path = tmp.name
    try:
        proc = subprocess.run(["sh", "-n", tmp_path],
                              capture_output=True, text=True)
        if proc.returncode != 0:
            return proc.stderr.strip().replace(tmp_path, "<block>")
        return None
    finally:
        os.unlink(tmp_path)


def check_json(text):
    try:
        json.loads(text)
        return None
    except json.JSONDecodeError as e:
        return str(e)


def main():
    root = repo_root()
    checked = skipped = 0
    failures = []
    for path in doc_files(root):
        rel = os.path.relpath(path, root)
        for start, lang, text in fenced_blocks(path):
            if lang not in CHECKED:
                skipped += 1
                continue
            checked += 1
            if text.startswith("ERROR:"):
                failures.append(f"{rel}:{start}: {text}")
                continue
            error = check_shell(text) if lang in ("sh", "bash") \
                else check_json(text)
            if error is not None:
                failures.append(f"{rel}:{start}: bad {lang} block: {error}")
    for failure in failures:
        print(failure, file=sys.stderr)
    if failures:
        print(f"check_doc_snippets: {len(failures)} of {checked} checked "
              "blocks failed", file=sys.stderr)
        return 1
    print(f"check_doc_snippets: {checked} sh/json blocks parse cleanly "
          f"({skipped} untagged/other blocks skipped)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
