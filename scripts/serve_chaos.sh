#!/usr/bin/env sh
# Session-server chaos test (docs/failure-model.md). Exercises the three
# hard things at once that serve_smoke.sh exercises one at a time:
#
#   phase 1  concurrent clients — several parallel connections drive
#            disjoint sessions to exhaustion through one server;
#   phase 2  kill -9 mid-traffic, restart on the same state directory,
#            and verify every session resumes exactly where it stopped
#            (tag continuity, no repeats, no gaps);
#   phase 3  storage-fault injection — restart the server with --inject-*
#            flags so journal/snapshot writes fail on a schedule; every
#            affected request must get a clean ERR (storage / quarantined)
#            while the server stays up and the health plane degrades,
#            then a clean restart + CLOSE recovers every session to its
#            full budget.
#
# Run by CI on the plain build; usable locally as:
#
#   sh scripts/serve_chaos.sh [path/to/easybo_serve]
#
set -eu

serve=${1:-build/examples/easybo_serve}
[ -x "$serve" ] || { echo "serve_chaos: $serve not built" >&2; exit 1; }

workdir=$(mktemp -d)
port=$(( 20000 + $$ % 20000 ))
pid=""
trap 'kill "$pid" 2>/dev/null || true; rm -rf "$workdir"' EXIT

req() {
  python3 -c '
import socket, sys
with socket.create_connection(("127.0.0.1", int(sys.argv[1])), timeout=20) as s:
    f = s.makefile("rw")
    f.write(sys.argv[2] + "\n"); f.flush()
    print(f.readline(), end="")
' "$port" "$1"
}

wait_up() {
  for _ in $(seq 1 100); do
    if req "STATUS" >/dev/null 2>&1; then return 0; fi
    sleep 0.1
  done
  echo "serve_chaos: server did not come up on port $port" >&2
  exit 1
}

start_server() { # start_server <log-name> [extra flags...]
  log=$1; shift
  "$serve" --state-dir "$workdir/state" --port "$port" "$@" \
    > "$workdir/$log" 2>&1 &
  pid=$!
  wait_up
}

stop_server() {
  kill "$pid" 2>/dev/null || true
  wait "$pid" 2>/dev/null || true
  pid=""
}

nsessions=6
max_sims=8
config_for() { # config_for <seed>
  printf '{"dim":2,"mode":"sequential","init_points":3,"max_sims":%s,"sobol_candidates":32,"random_candidates":16,"refine_evals":15,"trainer_max_iters":8,"trainer_restarts":1,"seed":"%s"}' \
    "$max_sims" "$1"
}

# One client process: holds a single connection and drives one session
# through n suggest/observe turns, checking tag continuity from $3.
drive() { # drive <session> <turns> <first-tag>
  python3 -c '
import json, socket, sys
name, turns, first = sys.argv[2], int(sys.argv[3]), int(sys.argv[4])
with socket.create_connection(("127.0.0.1", int(sys.argv[1])), timeout=60) as s:
    f = s.makefile("rw")
    def req(line):
        f.write(line + "\n"); f.flush()
        return f.readline().rstrip("\n")
    for k in range(turns):
        out = req("SUGGEST " + name)
        if not out.startswith("OK "):
            sys.exit(f"{name}: SUGGEST: {out}")
        tag = json.loads(out[3:])["tag"]
        if tag != first + k:
            sys.exit(f"{name}: expected tag {first + k}, got {tag}")
        out = req(f"OBSERVE {name} {tag} 0.5")
        if not out.startswith("OK "):
            sys.exit(f"{name}: OBSERVE {tag}: {out}")
' "$port" "$@"
}

# === Phase 1: concurrent clients =====================================
start_server serve1.log
i=0
while [ "$i" -lt "$nsessions" ]; do
  [ "$(req "NEW s$i $(config_for $((100 + i)))")" = "OK created s$i" ] \
    || { echo "serve_chaos: NEW s$i failed" >&2; exit 1; }
  i=$((i + 1))
done

# Half the budget each, all sessions in parallel, one connection per
# session.
half=$((max_sims / 2))
i=0
while [ "$i" -lt "$nsessions" ]; do
  drive "s$i" "$half" 0 &
  eval "client_$i=$!"
  i=$((i + 1))
done
i=0
while [ "$i" -lt "$nsessions" ]; do
  eval "wait \"\$client_$i\"" \
    || { echo "serve_chaos: concurrent client s$i failed" >&2; exit 1; }
  i=$((i + 1))
done
echo "serve_chaos: phase 1 ok ($nsessions concurrent clients, $half turns each)"

# === Phase 2: kill -9 and resume =====================================
kill -9 "$pid"
wait "$pid" 2>/dev/null || true
pid=""
start_server serve2.log

i=0
while [ "$i" -lt "$nsessions" ]; do
  status=$(req "STATUS s$i")
  printf '%s' "$status" | grep -q "\"observed\":$half" \
    || { echo "serve_chaos: s$i resumed wrong: $status" >&2; exit 1; }
  i=$((i + 1))
done
echo "serve_chaos: phase 2 ok (kill -9, all $nsessions sessions resumed at $half observations)"

# === Phase 3: storage faults =========================================
stop_server
# A bounded fault budget (--inject-fs-max): the schedule fires across
# the recovery traffic and then drains, so every session can finish —
# an unbounded schedule can align with a session's op pattern and fault
# the same request forever, which models a dead disk, not a flaky one.
start_server serve3.log --inject-enospc-every 5 --inject-eio-every 11 \
  --inject-fs-max 30

# Drive every session toward its remaining budget, tolerating storage
# ERRs the documented way: CLOSE a quarantined session and retry. The
# server itself must never die, and no session may lose a committed
# observation or accept an uncommitted one.
storage_errs=0
i=0
while [ "$i" -lt "$nsessions" ]; do
  t="$half"
  attempts=0
  while [ "$t" -lt "$max_sims" ]; do
    attempts=$((attempts + 1))
    [ "$attempts" -le 200 ] \
      || { echo "serve_chaos: s$i wedged at tag $t" >&2; exit 1; }
    out=$(req "SUGGEST s$i")
    case $out in
      "OK "*) ;;
      "ERR storage"*|"ERR quarantined"*|"ERR cannot"*)
        storage_errs=$((storage_errs + 1))
        req "CLOSE s$i" >/dev/null 2>&1 || true
        continue ;;
      *) echo "serve_chaos: s$i SUGGEST: $out" >&2; exit 1 ;;
    esac
    tag=$(printf '%s' "$out" | sed -n 's/^OK {"tag":\([0-9]*\),.*/\1/p')
    [ "$tag" = "$t" ] \
      || { echo "serve_chaos: s$i expected tag $t, got: $out" >&2; exit 1; }
    out=$(req "OBSERVE s$i $tag 0.5")
    case $out in
      "OK "*) t=$((t + 1)) ;;
      "ERR storage"*|"ERR quarantined"*|"ERR cannot"*)
        storage_errs=$((storage_errs + 1))
        req "CLOSE s$i" >/dev/null 2>&1 || true ;;
      *) echo "serve_chaos: s$i OBSERVE $tag: $out" >&2; exit 1 ;;
    esac
  done
  i=$((i + 1))
done
[ "$storage_errs" -gt 0 ] \
  || { echo "serve_chaos: fault injection never fired" >&2; exit 1; }

# The health plane counted the faults and the server is still answering.
health=$(req "STATUS")
printf '%s' "$health" | grep -q '"io_faults":[1-9]' \
  || { echo "serve_chaos: health shows no io_faults: $health" >&2; exit 1; }
echo "serve_chaos: phase 3 ok (survived $storage_errs storage errors under injection)"

# === Final audit: clean restart, every session complete ==============
stop_server
start_server serve4.log
i=0
while [ "$i" -lt "$nsessions" ]; do
  status=$(req "STATUS s$i")
  printf '%s' "$status" | grep -q "\"observed\":$max_sims" \
    || { echo "serve_chaos: s$i incomplete after recovery: $status" >&2; exit 1; }
  out=$(req "SUGGEST s$i")
  printf '%s' "$out" | grep -q "budget exhausted" \
    || { echo "serve_chaos: s$i not exhausted: $out" >&2; exit 1; }
  i=$((i + 1))
done
health=$(req "STATUS")
printf '%s' "$health" | grep -q '"storage":"ok"' \
  || { echo "serve_chaos: storage not ok after clean restart: $health" >&2; exit 1; }

echo "serve_chaos: all $nsessions sessions recovered to $max_sims/$max_sims sims after chaos"

# === Phase 4: slow session under the worker pool =====================
# One session (slow0) gets an injected 800 ms SUGGEST slowdown against a
# 300 ms request deadline: every one of its SUGGESTs must be deadline-cut
# with state rolled back, while six fast sessions sharing the same
# 4-worker pool run to exhaustion with bounded turnaround (the pool's
# hard bound is deadline + watchdog grace). Afterwards the health plane
# must reconcile exactly against the telemetry stream
# (obs_tail.py --check-health), and a restart without injection must
# hand slow0 tag 0 — its cut SUGGESTs consumed nothing.
stop_server
nfast=6
deadline_ms=300
grace_ms=2000
start_server serve5.log --serve-workers 4 \
  --request-deadline-ms "$deadline_ms" --queue-wait-ms 2000 \
  --watchdog-grace-ms "$grace_ms" \
  --inject-sleep-ms 800 --inject-sleep-session slow0 \
  --stream "$workdir/phase4.stream.jsonl"

[ "$(req "NEW slow0 $(config_for 900)")" = "OK created slow0" ] \
  || { echo "serve_chaos: NEW slow0 failed" >&2; exit 1; }
i=0
while [ "$i" -lt "$nfast" ]; do
  [ "$(req "NEW f$i $(config_for $((200 + i)))")" = "OK created f$i" ] \
    || { echo "serve_chaos: NEW f$i failed" >&2; exit 1; }
  i=$((i + 1))
done

# Fast fleet: one thread per session, full budget each, pooled p99
# turnaround must stay under the server's own bound.
python3 -c '
import json, socket, sys, threading
port, nfast, turns = int(sys.argv[1]), int(sys.argv[2]), int(sys.argv[3])
bound = float(sys.argv[4])
import time
lat, errs = [], []
lock = threading.Lock()
def drive(name):
    try:
        with socket.create_connection(("127.0.0.1", port), timeout=60) as s:
            f = s.makefile("rw")
            def req(line):
                t0 = time.monotonic()
                f.write(line + "\n"); f.flush()
                out = f.readline().rstrip("\n")
                with lock:
                    lat.append(time.monotonic() - t0)
                return out
            for k in range(turns):
                out = req("SUGGEST " + name)
                if not out.startswith("OK "):
                    raise RuntimeError(f"{name}: SUGGEST: {out}")
                tag = json.loads(out[3:])["tag"]
                if tag != k:
                    raise RuntimeError(f"{name}: expected tag {k}, got {tag}")
                out = req(f"OBSERVE {name} {tag} 0.5")
                if not out.startswith("OK "):
                    raise RuntimeError(f"{name}: OBSERVE {tag}: {out}")
    except Exception as e:
        with lock:
            errs.append(str(e))
threads = [threading.Thread(target=drive, args=(f"f{i}",))
           for i in range(nfast)]
for t in threads: t.start()
for t in threads: t.join()
if errs:
    sys.exit("fast sessions hit errors: " + "; ".join(errs))
lat.sort()
p99 = lat[min(len(lat) - 1, int(0.99 * len(lat)))]
print(f"serve_chaos: fast fleet {len(lat)} requests, "
      f"p99={p99 * 1000:.1f}ms (bound {bound * 1000:.0f}ms)")
if p99 > bound:
    sys.exit(f"fast-session p99 {p99:.3f}s exceeds bound {bound:.3f}s")
' "$port" "$nfast" "$max_sims" "$(python3 -c "print(($deadline_ms + $grace_ms) / 1000.0 + 0.2)")" &
fast_fleet=$!

# Meanwhile the slow session keeps getting cut — and keeps tag 0.
cuts=0
k=0
while [ "$k" -lt 4 ]; do
  out=$(req "SUGGEST slow0")
  case $out in
    "ERR deadline slow0"*) cuts=$((cuts + 1)) ;;
    *) echo "serve_chaos: slow0 expected a deadline cut, got: $out" >&2
       exit 1 ;;
  esac
  k=$((k + 1))
done

wait "$fast_fleet" \
  || { echo "serve_chaos: fast fleet failed under the slow session" >&2; exit 1; }

# Health plane: the cuts were counted, and the snapshot reconciles
# against the stream's serve.* counters once the server says bye.
health=$(req "STATUS")
printf '%s' "$health" | grep -q '"deadline_cut":[1-9]' \
  || { echo "serve_chaos: health shows no deadline cuts: $health" >&2; exit 1; }
printf '%s\n' "$health" > "$workdir/phase4.health.json"
stop_server
python3 scripts/obs_tail.py --check-health "$workdir/phase4.health.json" \
  "$workdir/phase4.stream.jsonl" \
  || { echo "serve_chaos: health/stream reconciliation failed" >&2; exit 1; }

# Restart with no injection: the cut SUGGESTs consumed nothing, so
# slow0 starts from tag 0 and runs normally.
start_server serve6.log --serve-workers 4 \
  --request-deadline-ms "$deadline_ms" --queue-wait-ms 2000 \
  --watchdog-grace-ms "$grace_ms"
out=$(req "SUGGEST slow0")
printf '%s' "$out" | grep -q '^OK {"tag":0,' \
  || { echo "serve_chaos: slow0 did not restart at tag 0: $out" >&2; exit 1; }
tag=$(printf '%s' "$out" | sed -n 's/^OK {"tag":\([0-9]*\),.*/\1/p')
out=$(req "OBSERVE slow0 $tag 0.5")
case $out in
  "OK "*) ;;
  *) echo "serve_chaos: slow0 OBSERVE after restart: $out" >&2; exit 1 ;;
esac
echo "serve_chaos: phase 4 ok ($cuts deadline cuts on slow0, fast fleet unaffected, health reconciled, tag 0 preserved)"
