#!/usr/bin/env sh
# Session-server smoke test (docs/service-protocol.md). Boots
# easybo_serve on a TCP port, interleaves two named sessions over the
# line protocol, SIGKILLs the server mid-conversation, restarts it on
# the same state directory, and drives one of the sessions onward — the
# resumed stream must pick up at the next tag with no repeats and no
# gaps (every mutation is durable before its reply). Run by CI on the
# plain build; usable locally as:
#
#   sh scripts/serve_smoke.sh [path/to/easybo_serve]
#
set -eu

serve=${1:-build/examples/easybo_serve}
[ -x "$serve" ] || { echo "serve_smoke: $serve not built" >&2; exit 1; }

workdir=$(mktemp -d)
# Per-run port: a fixed one races against a previous run's server that
# is still releasing it.
port=$(( 20000 + $$ % 20000 ))
trap 'kill "$pid" 2>/dev/null || true; rm -rf "$workdir"' EXIT

# The load generator client: one request line, one reply line over TCP.
# busybox/dash-friendly; python3 is already a CI docs dependency.
req() {
  python3 -c '
import socket, sys
with socket.create_connection(("127.0.0.1", int(sys.argv[1])), timeout=10) as s:
    f = s.makefile("rw")
    f.write(sys.argv[2] + "\n"); f.flush()
    print(f.readline(), end="")
' "$port" "$1"
}

wait_up() {
  for _ in $(seq 1 50); do
    if req "STATUS nosuch" >/dev/null 2>&1; then return 0; fi
    sleep 0.1
  done
  echo "serve_smoke: server did not come up on port $port" >&2
  exit 1
}

config='{"dim":2,"mode":"sequential","init_points":4,"max_sims":12,
"sobol_candidates":64,"random_candidates":32,"refine_evals":30,
"trainer_max_iters":10,"trainer_restarts":1,"seed":"11"}'
config=$(printf '%s' "$config" | tr -d '\n')

# Both server generations stream live telemetry (docs/telemetry.md);
# obs_tail.py summarizes the files at the end of the smoke.
"$serve" --state-dir "$workdir/state" --port "$port" \
  --stream "$workdir/stream1.jsonl" \
  > "$workdir/serve1.log" 2>&1 &
pid=$!
wait_up

# Two interleaved sessions: alternate suggest/observe turns between them.
[ "$(req "NEW a $config")" = "OK created a" ] || { echo "serve_smoke: NEW a failed" >&2; exit 1; }
[ "$(req 'NEW b {"dim":2,"mode":"sequential","init_points":4,"max_sims":12,"sobol_candidates":64,"random_candidates":32,"refine_evals":30,"trainer_max_iters":10,"trainer_restarts":1,"seed":"22"}')" = "OK created b" ] \
  || { echo "serve_smoke: NEW b failed" >&2; exit 1; }

turn() { # turn <session> <expected-tag>
  out=$(req "SUGGEST $1")
  tag=$(printf '%s' "$out" | sed -n 's/^OK {"tag":\([0-9]*\),.*/\1/p')
  [ "$tag" = "$2" ] || { echo "serve_smoke: $1 expected tag $2, got: $out" >&2; exit 1; }
  ok=$(req "OBSERVE $1 $tag 0.5")
  [ "$ok" = 'OK {"action":"observed"}' ] || { echo "serve_smoke: OBSERVE $1 $tag: $ok" >&2; exit 1; }
}

for t in 0 1 2; do
  turn a "$t"
  turn b "$t"
done

# SIGKILL mid-conversation: no shutdown handler runs, only the on-disk
# journal + snapshot survive.
kill -9 "$pid"
wait "$pid" 2>/dev/null || true
echo "serve_smoke: killed server after 3 interleaved turns per session"

[ -s "$workdir/state/a.journal" ] || { echo "serve_smoke: no journal for session a" >&2; exit 1; }
[ -s "$workdir/state/b.snapshot" ] || { echo "serve_smoke: no snapshot for session b" >&2; exit 1; }

"$serve" --state-dir "$workdir/state" --port "$port" \
  --stream "$workdir/stream2.jsonl" \
  > "$workdir/serve2.log" 2>&1 &
pid=$!
wait_up

# Resume session a from checkpoint and finish its budget: tags must
# continue exactly where the killed process stopped (3..11).
status=$(req "STATUS a")
printf '%s' "$status" | grep -q '"observed":3' \
  || { echo "serve_smoke: resumed status wrong: $status" >&2; exit 1; }
for t in 3 4 5 6 7 8 9 10 11; do
  turn a "$t"
done
out=$(req "SUGGEST a")
printf '%s' "$out" | grep -q "budget exhausted" \
  || { echo "serve_smoke: expected exhausted budget, got: $out" >&2; exit 1; }

echo "serve_smoke: session a resumed at tag 3 and completed 12/12 sims"

# Tear the server down cleanly (TERM runs the bye frame) and make the
# telemetry streams account for the run: both generations must have
# produced events, dropped nothing, and be parseable by obs_tail.py.
kill "$pid"
wait "$pid" 2>/dev/null || true
pid=
tail=$(dirname -- "$0")/obs_tail.py
summary=$(python3 "$tail" "$workdir/stream1.jsonl" "$workdir/stream2.jsonl")
printf '%s\n' "$summary"
printf '%s\n' "$summary" | grep -q '^fleet: 2 stream(s), [1-9][0-9]* events, 0 dropped$' \
  || { echo "serve_smoke: telemetry streams incomplete or dropped events" >&2; exit 1; }
echo "serve_smoke: telemetry streams reconcile (0 dropped across both generations)"
